// Block Lookup Table (BLT): per-file map from block index to the set of tiers
// that store a copy of the block (paper §2.2, Figure 2; MOST multi-residency).
//
// Residency model:
//  * Every mapped block has exactly one *primary* copy — the authoritative,
//    newest version. The legacy single-tier API (Lookup/SetRange/Runs/...)
//    operates on the primary copy and behaves exactly as before.
//  * A block may additionally be resident on up to 31 other tiers ("mirror"
//    copies), tracked as a tier bitmap with a per-copy dirty bit. A dirty
//    copy is stale: the primary absorbed a write that has not yet been
//    reconciled onto it. The dirty bitmap is always a subset of the extra
//    bitmap, and the extra bitmap never contains the primary tier.
//
// Two primary-map implementations, both mentioned in the paper:
//  * ExtentTreeBlt — runs of blocks on the same tier stored as extents in an
//    ordered tree; the default ("we use an extent tree as a high-performance
//    data structure").
//  * ByteArrayBlt — "one byte per 4 KB of user data is sufficient with a
//    simple byte array, leading to less than 0.025% of space overhead"
//    (§2.3). Kept for the space/speed ablation bench.
// The mirror layer is shared: both kinds store extra residency in an extent
// map owned by the base class, so multi-residency semantics are identical
// across kinds.
#ifndef MUX_CORE_BLOCK_LOOKUP_TABLE_H_
#define MUX_CORE_BLOCK_LOOKUP_TABLE_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/tier.h"

namespace mux::core {

// Tiers must have ids below this to participate in mirror bitmaps. The
// primary copy may live on any tier id.
inline constexpr uint32_t kMaxResidencyTiers = 32;

// Full residency of one block: the primary tier plus bitmaps of extra copies
// and of which of those copies are stale.
struct ResidencySet {
  TierId primary = kInvalidTier;
  uint32_t extra = 0;  // bitmap of additional resident tiers (excl. primary)
  uint32_t dirty = 0;  // subset of `extra`: stale copies

  bool Mapped() const { return primary != kInvalidTier; }
  static uint32_t Bit(TierId t) {
    return t < kMaxResidencyTiers ? (1u << t) : 0u;
  }
  // Any copy (primary or extra) on `t`.
  bool On(TierId t) const { return t == primary || (extra & Bit(t)) != 0; }
  // Extra (non-primary) copy on `t`.
  bool ReplicaOn(TierId t) const { return (extra & Bit(t)) != 0; }
  bool DirtyOn(TierId t) const { return (dirty & Bit(t)) != 0; }
  // A copy that is safe to serve reads from: the primary, or a clean mirror.
  bool CleanOn(TierId t) const {
    return t == primary || ((extra & ~dirty) & Bit(t)) != 0;
  }
  uint32_t Copies() const {
    return (Mapped() ? 1u : 0u) + static_cast<uint32_t>(std::popcount(extra));
  }
  bool operator==(const ResidencySet& o) const {
    return primary == o.primary && extra == o.extra && dirty == o.dirty;
  }
};

class BlockLookupTable {
 public:
  struct Run {
    uint64_t first_block = 0;
    uint64_t count = 0;
    TierId tier = kInvalidTier;
  };
  // A maximal run of blocks with identical full residency.
  struct ResidencyRun {
    uint64_t first_block = 0;
    uint64_t count = 0;
    ResidencySet set;
  };
  // A raw mirror extent: extra-residency bitmaps without the primary tier.
  struct MirrorRun {
    uint64_t first_block = 0;
    uint64_t count = 0;
    uint32_t extra = 0;
    uint32_t dirty = 0;
  };

  virtual ~BlockLookupTable() = default;

  // ---- Legacy single-tier API (primary copy) -------------------------------

  // Tier storing the primary copy of `block`; kInvalidTier for holes.
  TierId Lookup(uint64_t block) const { return LookupPrimary(block); }
  // Moves the primary copy of the range to `tier`. Extra residency on `tier`
  // dissolves into the primary (fresh bytes just landed there); mirror copies
  // on other tiers are kept untouched — callers that overwrote the data must
  // follow up with DirtyAll/AbsorbWrite, callers that copied it verbatim
  // (migration) need not.
  void SetRange(uint64_t first_block, uint64_t count, TierId tier);
  void Set(uint64_t block, TierId tier) { SetRange(block, 1, tier); }
  // Clears mappings — primary and all mirrors — at and beyond `first_block`.
  void TruncateFrom(uint64_t first_block);
  // Clears primary and all mirrors in a range (hole punch).
  void ClearRange(uint64_t first_block, uint64_t count);

  // Decomposes [first_block, first_block+count) into maximal runs of equal
  // primary tier (holes appear as kInvalidTier runs). This is what the VFS
  // call processor uses to split one user request into per-file-system
  // requests.
  std::vector<Run> Runs(uint64_t first_block, uint64_t count) const {
    return PrimaryRuns(first_block, count);
  }
  // Every mapped primary run in the file, in order.
  std::vector<Run> AllRuns() const { return AllPrimaryRuns(); }

  // Primary-mapped blocks on a given tier / in total.
  uint64_t BlocksOnTier(TierId tier) const { return PrimaryBlocksOnTier(tier); }
  uint64_t TotalBlocks() const { return TotalPrimaryBlocks(); }
  // Approximate DRAM footprint, for the paper's space-overhead claim.
  uint64_t MemoryBytes() const;

  // ---- Residency-aware API -------------------------------------------------

  // Full residency of `block` (primary + extra + dirty bitmaps).
  ResidencySet LookupSet(uint64_t block) const;
  // Adds a mirror copy on `tier` for every mapped block in the range whose
  // primary is elsewhere. `dirty=false` means fresh bytes were just copied
  // there (an existing dirty bit is cleared); `dirty=true` records a stale
  // copy (recovery). No-op for holes, for `tier == primary`, and for tier ids
  // >= kMaxResidencyTiers.
  void AddResidency(uint64_t first_block, uint64_t count, TierId tier,
                    bool dirty = false);
  // Removes the mirror copy on `tier` (primary copies are unaffected).
  void DropResidency(uint64_t first_block, uint64_t count, TierId tier);
  // Marks the mirror copy on `tier` stale.
  void DirtyOn(uint64_t first_block, uint64_t count, TierId tier);
  // Marks every mirror copy in the range stale (the primary absorbed a
  // write). Returns the number of newly-dirtied block copies.
  uint64_t DirtyAll(uint64_t first_block, uint64_t count);
  // Marks the mirror copy on `tier` clean again (mirror sync reconciled it).
  void CleanOn(uint64_t first_block, uint64_t count, TierId tier);
  // Records a write absorbed on resident tier `tier`: `tier` becomes the
  // primary for the range, the old primary demotes to a *dirty* mirror (its
  // bytes are now stale but still on media), and every other mirror copy is
  // marked dirty. For pieces where `tier` already is the primary this reduces
  // to DirtyAll. Holes in the range are left unmapped. Returns the number of
  // newly-dirtied block copies.
  uint64_t AbsorbWrite(uint64_t first_block, uint64_t count, TierId tier);

  // Decomposes the range into maximal runs of identical full residency
  // (holes appear with an unmapped set).
  std::vector<ResidencyRun> ResidencyRuns(uint64_t first_block,
                                          uint64_t count) const;
  // Raw mirror extents overlapping the range / in the whole file, clipped to
  // the range. Only extents with a nonzero extra bitmap are returned.
  std::vector<MirrorRun> MirrorRuns(uint64_t first_block,
                                    uint64_t count) const;
  std::vector<MirrorRun> AllMirrorRuns() const;
  // Mirror extents holding at least one dirty copy, whole file.
  std::vector<MirrorRun> DirtyRuns() const;

  uint64_t ReplicaBlocksOnTier(TierId tier) const;
  uint64_t DirtyBlocksOnTier(TierId tier) const;
  // Total stale copies across all tiers.
  uint64_t DirtyBlocks() const;
  bool HasMirrors() const { return !mirror_.empty(); }

 protected:
  // Primary-copy map, implemented by the concrete BLT kinds. Same contracts
  // as the legacy public API.
  virtual TierId LookupPrimary(uint64_t block) const = 0;
  virtual void SetPrimaryRange(uint64_t first_block, uint64_t count,
                               TierId tier) = 0;
  virtual void TruncatePrimaryFrom(uint64_t first_block) = 0;
  virtual void ClearPrimaryRange(uint64_t first_block, uint64_t count) = 0;
  virtual std::vector<Run> PrimaryRuns(uint64_t first_block,
                                       uint64_t count) const = 0;
  virtual std::vector<Run> AllPrimaryRuns() const = 0;
  virtual uint64_t PrimaryBlocksOnTier(TierId tier) const = 0;
  virtual uint64_t TotalPrimaryBlocks() const = 0;
  virtual uint64_t PrimaryMemoryBytes() const = 0;

 private:
  struct MirrorExt {
    uint64_t count = 0;
    uint32_t extra = 0;
    uint32_t dirty = 0;
  };
  using MirrorMap = std::map<uint64_t, MirrorExt>;

  // Applies `fn` to the (extra, dirty) bitmaps of every block in the range,
  // splitting/merging extents as needed, keeping per-tier counters in sync
  // and enforcing dirty ⊆ extra. Gaps are visited with (0, 0) bitmaps and
  // materialize only if `fn` produces a nonzero result.
  void MutateMirror(uint64_t first_block, uint64_t count,
                    const std::function<void(uint32_t&, uint32_t&)>& fn);
  void AccountMirror(uint64_t len, uint32_t old_extra, uint32_t old_dirty,
                     uint32_t new_extra, uint32_t new_dirty);

  MirrorMap mirror_;  // first_block -> extra-residency extent
  std::map<TierId, uint64_t> per_tier_extra_;
  std::map<TierId, uint64_t> per_tier_dirty_;
};

// Extent-tree implementation (default).
class ExtentTreeBlt : public BlockLookupTable {
 protected:
  TierId LookupPrimary(uint64_t block) const override;
  void SetPrimaryRange(uint64_t first_block, uint64_t count,
                       TierId tier) override;
  void TruncatePrimaryFrom(uint64_t first_block) override;
  void ClearPrimaryRange(uint64_t first_block, uint64_t count) override;
  std::vector<Run> PrimaryRuns(uint64_t first_block,
                               uint64_t count) const override;
  std::vector<Run> AllPrimaryRuns() const override;
  uint64_t PrimaryBlocksOnTier(TierId tier) const override;
  uint64_t TotalPrimaryBlocks() const override;
  uint64_t PrimaryMemoryBytes() const override;

 private:
  struct Extent {
    uint64_t count = 0;
    TierId tier = kInvalidTier;
  };
  // Merges with neighbours where possible; requires the entry at `it` to
  // exist.
  void Coalesce(std::map<uint64_t, Extent>::iterator it);

  std::map<uint64_t, Extent> extents_;  // first_block -> extent
  std::map<TierId, uint64_t> per_tier_;
};

// Byte-array implementation (one byte per block).
class ByteArrayBlt : public BlockLookupTable {
 protected:
  TierId LookupPrimary(uint64_t block) const override;
  void SetPrimaryRange(uint64_t first_block, uint64_t count,
                       TierId tier) override;
  void TruncatePrimaryFrom(uint64_t first_block) override;
  void ClearPrimaryRange(uint64_t first_block, uint64_t count) override;
  std::vector<Run> PrimaryRuns(uint64_t first_block,
                               uint64_t count) const override;
  std::vector<Run> AllPrimaryRuns() const override;
  uint64_t PrimaryBlocksOnTier(TierId tier) const override;
  uint64_t TotalPrimaryBlocks() const override;
  uint64_t PrimaryMemoryBytes() const override;

 private:
  static constexpr uint8_t kHole = 0xff;
  std::vector<uint8_t> tiers_;  // index = block, value = tier (kHole = none)
  std::map<TierId, uint64_t> per_tier_;
};

enum class BltKind { kExtentTree, kByteArray };

std::unique_ptr<BlockLookupTable> MakeBlt(BltKind kind);

}  // namespace mux::core

#endif  // MUX_CORE_BLOCK_LOOKUP_TABLE_H_
