// Metadata multiplexing: collective inode + per-attribute affinity (§2.3).
//
// Each metadata attribute has an *affinitive* file system — the one holding
// the most up-to-date value:
//   * size  — the FS that stores the last byte of the file,
//   * mtime — the FS that performed the last update,
//   * atime — the FS that served the last read,
//   * mode  — the FS that hosted the file at creation (or last chmod).
// Mux caches all attribute values in a collective inode so Stat never fans
// out to the underlying file systems, and lazily pushes values to the
// non-owner file systems (LazySync) so their shadow files do not drift
// arbitrarily far.
//
// Cross-FS attributes with no single owner (disk consumption) are aggregated
// over all participating file systems.
#ifndef MUX_CORE_METADATA_H_
#define MUX_CORE_METADATA_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "src/common/clock.h"
#include "src/core/tier.h"
#include "src/vfs/types.h"

namespace mux::core {

enum class Attr : uint8_t { kSize = 0, kMtime = 1, kAtime = 2, kMode = 3 };
inline constexpr int kAttrCount = 4;

std::string_view AttrName(Attr attr);

// The collective inode: every attribute value plus its affinitive tier.
class CollectiveInode {
 public:
  CollectiveInode() { owners_.fill(kInvalidTier); }

  // --- cached values ----------------------------------------------------
  uint64_t size() const { return size_; }
  SimTime mtime() const { return mtime_; }
  SimTime atime() const { return atime_; }
  uint32_t mode() const { return mode_; }
  SimTime ctime() const { return ctime_; }

  void set_ctime(SimTime t) { ctime_ = t; }

  // --- affinity-tracked updates ------------------------------------------
  // Each setter records the new value and reassigns the attribute's owner.
  void UpdateSize(uint64_t size, TierId owner) {
    size_ = size;
    SetOwner(Attr::kSize, owner);
  }
  void UpdateMtime(SimTime t, TierId owner) {
    mtime_ = t;
    SetOwner(Attr::kMtime, owner);
  }
  void UpdateAtime(SimTime t, TierId owner) {
    atime_ = t;
    SetOwner(Attr::kAtime, owner);
  }
  void UpdateMode(uint32_t mode, TierId owner) {
    mode_ = mode;
    SetOwner(Attr::kMode, owner);
  }

  TierId Owner(Attr attr) const {
    return owners_[static_cast<size_t>(attr)];
  }
  void SetOwner(Attr attr, TierId tier) {
    owners_[static_cast<size_t>(attr)] = tier;
    dirty_[static_cast<size_t>(attr)] = true;
  }

  // Attributes changed since the last lazy synchronization.
  bool Dirty(Attr attr) const { return dirty_[static_cast<size_t>(attr)]; }
  void ClearDirty() { dirty_.fill(false); }

  // Normalizes a timestamp to what a tier with the given granularity can
  // represent (feature imparity, §4 — e.g. extlite's 1-second stamps).
  static SimTime Normalize(SimTime t, SimTime granularity_ns) {
    return granularity_ns <= 1 ? t : t - t % granularity_ns;
  }

 private:
  uint64_t size_ = 0;
  SimTime mtime_ = 0;
  SimTime atime_ = 0;
  SimTime ctime_ = 0;
  uint32_t mode_ = 0644;
  std::array<TierId, kAttrCount> owners_{};
  std::array<bool, kAttrCount> dirty_{};
};

}  // namespace mux::core

#endif  // MUX_CORE_METADATA_H_
