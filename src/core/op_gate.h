// Fair FIFO reader-writer gate for op state machines.
//
// A continuation-resumed op acquires its inode lock in one phase (resolve,
// on the submitting thread) and releases it in another (commit, on a
// resume-pool worker). std::shared_mutex forbids that: unlock must happen
// on the locking thread. OpGate's ownership is ACQUISITION-scoped instead
// of thread-scoped — the gate is a counter + FIFO waiter queue behind a
// plain mutex/condvar, so a grant on thread A and a release on thread B
// are just two critical sections TSan fully understands.
//
// Semantics:
//   * Shared/exclusive modes with writer-preferring fairness: a reader
//     queues behind any waiter (no barging past a parked writer), and
//     releases grant the queue head — consecutive shared waiters are
//     granted as one batch.
//   * Blocking methods use the standard SharedMutex spelling (lock /
//     unlock / lock_shared / unlock_shared and try_ variants), so
//     std::shared_lock<OpGate> and std::lock_guard<OpGate> compile
//     unchanged at every legacy call site.
//   * Async acquisition (TryLockOrQueue / TryLockSharedOrQueue) never
//     blocks: it either acquires inline and returns true, or queues a
//     grant callback and returns false. The callback runs on the RELEASING
//     thread once the gate is held on the op's behalf, so it must only
//     enqueue the op's next phase (AsyncIoCore::Resume), never execute
//     phase work inline.
//
// Why ops must hold the shared gate across their device window at all: a
// racing migration CommitRuns takes the exclusive gate and punches the
// source blocks it moved; a read that dropped the gate before its tier I/O
// completed could return zeros for blocks that were remapped mid-flight.
#ifndef MUX_CORE_OP_GATE_H_
#define MUX_CORE_OP_GATE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace mux::core {

class OpGate {
 public:
  using GrantFn = std::function<void()>;

  OpGate() = default;
  OpGate(const OpGate&) = delete;
  OpGate& operator=(const OpGate&) = delete;

  // Blocking acquisition (SharedMutex concept).
  void lock();
  bool try_lock();
  void unlock();
  void lock_shared();
  bool try_lock_shared();
  void unlock_shared();

  // Non-blocking acquisition: true = acquired inline, the caller holds the
  // gate now. false = `grant` was queued and will run exactly once when the
  // gate is granted to this waiter (the op holds the gate when it runs).
  bool TryLockOrQueue(GrantFn grant);
  bool TryLockSharedOrQueue(GrantFn grant);

 private:
  struct Waiter {
    bool exclusive = false;
    bool* granted = nullptr;  // blocking waiter: flag on its stack
    GrantFn grant;            // async waiter: continuation to fire
  };

  // True when a new acquisition in `exclusive` mode may proceed inline:
  // nothing conflicting is held and nobody is queued ahead (fairness).
  bool CanAcquireLocked(bool exclusive) const {
    if (!waiters_.empty()) {
      return false;
    }
    return exclusive ? (!writer_ && readers_ == 0) : !writer_;
  }

  // Grants the queue head (batching consecutive shared waiters) if the
  // gate is free. Returns async grant fns for the caller to fire AFTER
  // releasing mu_; blocking waiters are flagged + notified here.
  std::vector<GrantFn> GrantLocked();
  void ReleaseExclusive();
  void ReleaseShared();

  std::mutex mu_;
  std::condition_variable cv_;
  uint32_t readers_ = 0;
  bool writer_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace mux::core

#endif  // MUX_CORE_OP_GATE_H_
