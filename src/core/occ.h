// OCC Synchronizer state (§2.4).
//
// Data movement must not race with user writes, but there is no lock shared
// by the underlying file systems. The insight: migration does not change
// content, so it succeeds iff the content stayed unchanged while it copied.
//
// Per file:
//  * `version` — bumped by every committed user write,
//  * `migrating` — set while a migration pass is copying,
//  * `dirty_blocks` — blocks written while `migrating` was set.
//
// Protocol (driven by the MigrationEngine):
//   1. BeginPass(): record v1 = version, set migrating, clear dirty set.
//   2. copy blocks (no lock held; writers keep running).
//   3. Validate(range): under the file lock, if version == v1 commit all;
//      otherwise commit only blocks not in dirty_blocks and return the
//      conflicted ones for retry.
//   4. After kMaxRetries failed passes the engine falls back to lock-based
//      migration (holding the file write lock during the copy).
//
// All methods must be called with the owning file's lock held EXCEPT where
// noted; the version counter itself is atomic so writers can bump it without
// extending their critical section.
#ifndef MUX_CORE_OCC_H_
#define MUX_CORE_OCC_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

namespace mux::core {

struct OccStats {
  uint64_t passes = 0;
  uint64_t clean_commits = 0;
  uint64_t conflicts = 0;
  uint64_t retried_blocks = 0;
  uint64_t lock_fallbacks = 0;
};

class OccState {
 public:
  static constexpr int kMaxRetries = 3;

  // -- writer side (file lock held) ----------------------------------------
  // Records a committed write over [first_block, first_block+count).
  void NoteWrite(uint64_t first_block, uint64_t count) {
    version_.fetch_add(1, std::memory_order_release);
    if (migrating_) {
      for (uint64_t b = first_block; b < first_block + count; ++b) {
        dirty_blocks_.insert(b);
      }
    }
  }

  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  bool migrating() const { return migrating_; }

  // Restores the counter from a bookkeeper snapshot (mount time only).
  void RestoreVersion(uint64_t v) {
    version_.store(v, std::memory_order_release);
  }

  // -- migration side -------------------------------------------------------
  // File lock held. Returns the version snapshot v1.
  uint64_t BeginPass() {
    migrating_ = true;
    dirty_blocks_.clear();
    return version();
  }

  // File lock held. Given the snapshot and the migrated range, splits the
  // range into committable blocks and conflicted blocks and ends the pass.
  struct ValidateResult {
    bool clean = false;                     // no conflicting writes at all
    std::vector<uint64_t> conflicted;       // blocks to retry
  };
  ValidateResult ValidateAndEnd(uint64_t v1, uint64_t first_block,
                                uint64_t count) {
    ValidateResult result;
    if (version() == v1) {
      result.clean = true;
    } else {
      for (uint64_t b = first_block; b < first_block + count; ++b) {
        if (dirty_blocks_.contains(b)) {
          result.conflicted.push_back(b);
        }
      }
      result.clean = result.conflicted.empty();
    }
    migrating_ = false;
    dirty_blocks_.clear();
    return result;
  }

  void AbortPass() {
    migrating_ = false;
    dirty_blocks_.clear();
  }

 private:
  std::atomic<uint64_t> version_{0};
  bool migrating_ = false;
  std::set<uint64_t> dirty_blocks_;
};

}  // namespace mux::core

#endif  // MUX_CORE_OCC_H_
