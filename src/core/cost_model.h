// CPU cost model for Mux's own software work.
//
// Mux adds an indirection layer above the device-specific file systems; its
// per-call bookkeeping (dispatch, block-lookup-table walks, metadata
// affinity updates, OCC version checks) is what §3.2 measures as the
// "worst-case indirection overhead". Each constant is charged to the shared
// SimClock at the corresponding step, so the overhead benchmarks observe it
// the same way the paper's wall-clock measurements did.
#ifndef MUX_CORE_COST_MODEL_H_
#define MUX_CORE_COST_MODEL_H_

#include "src/common/clock.h"

namespace mux::core {

struct CostModel {
  // Receiving a VFS call and re-issuing it downward ("calls the same VFS
  // function that invokes it"): argument translation, handle mapping.
  SimTime dispatch_ns = 150;
  // One block-lookup-table query (extent-tree descent).
  SimTime blt_lookup_ns = 90;
  // Updating a metadata-affinity owner + collective inode field.
  SimTime affinity_update_ns = 60;
  // OCC bookkeeping on the write path (version bump, migration-flag check).
  SimTime occ_check_ns = 40;
  // SCM cache index probe.
  SimTime cache_lookup_ns = 80;
  // Cache admission bookkeeping (frequency sketch update).
  SimTime cache_admission_ns = 60;
  // Staging one admitted block into the aggregation buffer (a DRAM copy;
  // the DAX write is charged in bulk at flush time).
  SimTime cache_stage_ns = 40;
  // Bookkeeping for flushing the aggregation buffer as one sequential DAX
  // write (the media time is ChargeDax on the flushed bytes).
  SimTime cache_agg_flush_ns = 300;
  // Extra cost per additional split segment of one request.
  SimTime split_segment_ns = 120;
  // Completion-based dispatch (AsyncIoCore): enqueueing one request into a
  // tier's submission ring (tagging the continuation, ring bookkeeping)...
  SimTime submit_ns = 70;
  // ... and resuming the awaiting op when its completion arrives. Charged
  // once per submitted request; the queueing *wait* itself is not a software
  // cost — it comes out of the simulated channel model, which is where a
  // deep SSD queue (DeviceProfile::queue_depth 16) and the single-channel
  // HDD diverge.
  SimTime completion_ns = 90;
};

}  // namespace mux::core

#endif  // MUX_CORE_COST_MODEL_H_
