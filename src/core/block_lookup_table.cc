#include "src/core/block_lookup_table.h"

#include <algorithm>

namespace mux::core {

// ---- Base class: legacy wrappers over the primary map ----------------------

void BlockLookupTable::SetRange(uint64_t first_block, uint64_t count,
                                TierId tier) {
  if (count == 0) {
    return;
  }
  // Fresh bytes (or an authoritative copy) just landed on `tier`: any mirror
  // copy recorded there dissolves into the new primary. Mirrors on other
  // tiers are untouched; whether they are now stale is the caller's call
  // (overwrite → DirtyAll, verbatim migration → nothing).
  const uint32_t bit = ResidencySet::Bit(tier);
  if (bit != 0 && !mirror_.empty()) {
    MutateMirror(first_block, count, [bit](uint32_t& extra, uint32_t& dirty) {
      extra &= ~bit;
      dirty &= ~bit;
    });
  }
  SetPrimaryRange(first_block, count, tier);
}

void BlockLookupTable::TruncateFrom(uint64_t first_block) {
  TruncatePrimaryFrom(first_block);
  auto it = mirror_.lower_bound(first_block);
  if (it != mirror_.begin()) {
    auto prev = std::prev(it);
    if (first_block < prev->first + prev->second.count) {
      // Split the straddling extent and drop its tail.
      const uint64_t tail = prev->first + prev->second.count - first_block;
      AccountMirror(tail, prev->second.extra, prev->second.dirty, 0, 0);
      prev->second.count -= tail;
    }
  }
  while (it != mirror_.end()) {
    AccountMirror(it->second.count, it->second.extra, it->second.dirty, 0, 0);
    it = mirror_.erase(it);
  }
}

void BlockLookupTable::ClearRange(uint64_t first_block, uint64_t count) {
  if (count == 0) {
    return;
  }
  ClearPrimaryRange(first_block, count);
  if (!mirror_.empty()) {
    MutateMirror(first_block, count, [](uint32_t& extra, uint32_t& dirty) {
      extra = 0;
      dirty = 0;
    });
  }
}

uint64_t BlockLookupTable::MemoryBytes() const {
  // Red-black tree node for a mirror extent: key + payload + 3 pointers +
  // color, ~56 bytes.
  return PrimaryMemoryBytes() + mirror_.size() * 56;
}

// ---- Base class: residency layer -------------------------------------------

ResidencySet BlockLookupTable::LookupSet(uint64_t block) const {
  ResidencySet set;
  set.primary = LookupPrimary(block);
  auto it = mirror_.upper_bound(block);
  if (it != mirror_.begin()) {
    --it;
    if (block < it->first + it->second.count) {
      set.extra = it->second.extra;
      set.dirty = it->second.dirty;
    }
  }
  return set;
}

void BlockLookupTable::AccountMirror(uint64_t len, uint32_t old_extra,
                                     uint32_t old_dirty, uint32_t new_extra,
                                     uint32_t new_dirty) {
  uint32_t add = new_extra & ~old_extra;
  uint32_t rem = old_extra & ~new_extra;
  while (add) {
    const int b = std::countr_zero(add);
    add &= add - 1;
    per_tier_extra_[static_cast<TierId>(b)] += len;
  }
  while (rem) {
    const int b = std::countr_zero(rem);
    rem &= rem - 1;
    per_tier_extra_[static_cast<TierId>(b)] -= len;
  }
  add = new_dirty & ~old_dirty;
  rem = old_dirty & ~new_dirty;
  while (add) {
    const int b = std::countr_zero(add);
    add &= add - 1;
    per_tier_dirty_[static_cast<TierId>(b)] += len;
  }
  while (rem) {
    const int b = std::countr_zero(rem);
    rem &= rem - 1;
    per_tier_dirty_[static_cast<TierId>(b)] -= len;
  }
}

void BlockLookupTable::MutateMirror(
    uint64_t first_block, uint64_t count,
    const std::function<void(uint32_t&, uint32_t&)>& fn) {
  if (count == 0) {
    return;
  }
  const uint64_t end = first_block + count;
  // Split a straddling predecessor so the range starts on an extent edge.
  auto it = mirror_.upper_bound(first_block);
  if (it != mirror_.begin()) {
    auto prev = std::prev(it);
    if (prev->first < first_block &&
        first_block < prev->first + prev->second.count) {
      MirrorExt tail{prev->first + prev->second.count - first_block,
                     prev->second.extra, prev->second.dirty};
      prev->second.count = first_block - prev->first;
      it = mirror_.emplace(first_block, tail).first;
    } else if (prev->first + prev->second.count > first_block) {
      it = prev;  // prev->first == first_block
    }
  }
  uint64_t pos = first_block;
  while (pos < end) {
    uint64_t seg_end;
    if (it == mirror_.end() || it->first >= end) {
      seg_end = end;  // trailing gap
    } else if (it->first > pos) {
      seg_end = it->first;  // gap before next extent
    } else {
      // Extent starting exactly at pos; split at `end` if it overshoots.
      seg_end = it->first + it->second.count;
      if (seg_end > end) {
        mirror_.emplace(end, MirrorExt{seg_end - end, it->second.extra,
                                       it->second.dirty});
        it->second.count = end - it->first;
        seg_end = end;
      }
      uint32_t extra = it->second.extra;
      uint32_t dirty = it->second.dirty;
      fn(extra, dirty);
      dirty &= extra;
      AccountMirror(seg_end - pos, it->second.extra, it->second.dirty, extra,
                    dirty);
      if (extra == 0 && dirty == 0) {
        it = mirror_.erase(it);
      } else {
        it->second.extra = extra;
        it->second.dirty = dirty;
        ++it;
      }
      pos = seg_end;
      continue;
    }
    // Gap piece [pos, seg_end): materialize only if fn produces residency.
    uint32_t extra = 0;
    uint32_t dirty = 0;
    fn(extra, dirty);
    dirty &= extra;
    if (extra != 0 || dirty != 0) {
      AccountMirror(seg_end - pos, 0, 0, extra, dirty);
      it = mirror_.emplace(pos, MirrorExt{seg_end - pos, extra, dirty}).first;
      ++it;
    }
    pos = seg_end;
  }
  // Coalesce the affected neighborhood: sweep from the extent before the
  // range to the first extent past it, merging equal adjacent extents.
  auto sweep = mirror_.lower_bound(first_block);
  if (sweep != mirror_.begin()) {
    --sweep;
  }
  while (sweep != mirror_.end() && sweep->first <= end) {
    auto next = std::next(sweep);
    if (next != mirror_.end() &&
        sweep->first + sweep->second.count == next->first &&
        sweep->second.extra == next->second.extra &&
        sweep->second.dirty == next->second.dirty) {
      sweep->second.count += next->second.count;
      mirror_.erase(next);
      continue;  // re-check the grown extent against its new successor
    }
    ++sweep;
  }
}

void BlockLookupTable::AddResidency(uint64_t first_block, uint64_t count,
                                    TierId tier, bool dirty) {
  const uint32_t bit = ResidencySet::Bit(tier);
  if (bit == 0 || count == 0) {
    return;
  }
  // Mirrors exist only for mapped blocks whose primary is elsewhere.
  for (const Run& run : PrimaryRuns(first_block, count)) {
    if (run.tier == kInvalidTier || run.tier == tier) {
      continue;
    }
    MutateMirror(run.first_block, run.count,
                 [bit, dirty](uint32_t& extra, uint32_t& d) {
                   extra |= bit;
                   if (dirty) {
                     d |= bit;
                   } else {
                     d &= ~bit;
                   }
                 });
  }
}

void BlockLookupTable::DropResidency(uint64_t first_block, uint64_t count,
                                     TierId tier) {
  const uint32_t bit = ResidencySet::Bit(tier);
  if (bit == 0 || mirror_.empty()) {
    return;
  }
  MutateMirror(first_block, count, [bit](uint32_t& extra, uint32_t& dirty) {
    extra &= ~bit;
    dirty &= ~bit;
  });
}

void BlockLookupTable::DirtyOn(uint64_t first_block, uint64_t count,
                               TierId tier) {
  const uint32_t bit = ResidencySet::Bit(tier);
  if (bit == 0 || mirror_.empty()) {
    return;
  }
  MutateMirror(first_block, count, [bit](uint32_t& extra, uint32_t& dirty) {
    dirty |= extra & bit;
  });
}

uint64_t BlockLookupTable::DirtyAll(uint64_t first_block, uint64_t count) {
  if (mirror_.empty()) {
    return 0;
  }
  const uint64_t before = DirtyBlocks();
  MutateMirror(first_block, count,
               [](uint32_t& extra, uint32_t& dirty) { dirty = extra; });
  return DirtyBlocks() - before;
}

void BlockLookupTable::CleanOn(uint64_t first_block, uint64_t count,
                               TierId tier) {
  const uint32_t bit = ResidencySet::Bit(tier);
  if (bit == 0 || mirror_.empty()) {
    return;
  }
  MutateMirror(first_block, count, [bit](uint32_t& extra, uint32_t& dirty) {
    dirty &= ~bit;
  });
}

uint64_t BlockLookupTable::AbsorbWrite(uint64_t first_block, uint64_t count,
                                       TierId tier) {
  if (count == 0) {
    return 0;
  }
  const uint32_t bit = ResidencySet::Bit(tier);
  uint64_t dirty_before = DirtyBlocks();
  for (const Run& run : PrimaryRuns(first_block, count)) {
    if (run.tier == kInvalidTier) {
      continue;  // holes stay unmapped; placement handles fresh blocks
    }
    if (run.tier == tier) {
      // Absorbed on the primary: every mirror copy is now stale.
      MutateMirror(run.first_block, run.count,
                   [](uint32_t& extra, uint32_t& dirty) { dirty = extra; });
      continue;
    }
    // Absorbed on a mirror: it becomes the primary, the old primary demotes
    // to a dirty mirror (bytes still on media, now stale), and every other
    // copy is stale too.
    const uint32_t old_bit = ResidencySet::Bit(run.tier);
    MutateMirror(run.first_block, run.count,
                 [bit, old_bit](uint32_t& extra, uint32_t& dirty) {
                   extra = (extra & ~bit) | old_bit;
                   dirty = extra;
                 });
    SetPrimaryRange(run.first_block, run.count, tier);
  }
  const uint64_t dirty_after = DirtyBlocks();
  return dirty_after > dirty_before ? dirty_after - dirty_before : 0;
}

std::vector<BlockLookupTable::ResidencyRun> BlockLookupTable::ResidencyRuns(
    uint64_t first_block, uint64_t count) const {
  std::vector<ResidencyRun> out;
  if (count == 0) {
    return out;
  }
  for (const Run& run : PrimaryRuns(first_block, count)) {
    uint64_t pos = run.first_block;
    const uint64_t rend = run.first_block + run.count;
    auto it = mirror_.upper_bound(pos);
    if (it != mirror_.begin()) {
      --it;
    }
    while (pos < rend) {
      while (it != mirror_.end() && it->first + it->second.count <= pos) {
        ++it;
      }
      uint64_t seg_end = rend;
      uint32_t extra = 0;
      uint32_t dirty = 0;
      if (it != mirror_.end() && it->first < rend) {
        if (it->first <= pos) {
          extra = it->second.extra;
          dirty = it->second.dirty;
          seg_end = std::min(rend, it->first + it->second.count);
        } else {
          seg_end = it->first;
        }
      }
      const ResidencySet set{run.tier, extra, dirty};
      if (!out.empty() && out.back().set == set &&
          out.back().first_block + out.back().count == pos) {
        out.back().count += seg_end - pos;
      } else {
        out.push_back(ResidencyRun{pos, seg_end - pos, set});
      }
      pos = seg_end;
    }
  }
  return out;
}

std::vector<BlockLookupTable::MirrorRun> BlockLookupTable::MirrorRuns(
    uint64_t first_block, uint64_t count) const {
  std::vector<MirrorRun> out;
  if (count == 0 || mirror_.empty()) {
    return out;
  }
  const uint64_t end = first_block + count;
  auto it = mirror_.upper_bound(first_block);
  if (it != mirror_.begin()) {
    --it;
  }
  for (; it != mirror_.end() && it->first < end; ++it) {
    const uint64_t lo = std::max(it->first, first_block);
    const uint64_t hi = std::min(it->first + it->second.count, end);
    if (hi <= lo || it->second.extra == 0) {
      continue;
    }
    out.push_back(MirrorRun{lo, hi - lo, it->second.extra, it->second.dirty});
  }
  return out;
}

std::vector<BlockLookupTable::MirrorRun> BlockLookupTable::AllMirrorRuns()
    const {
  std::vector<MirrorRun> out;
  out.reserve(mirror_.size());
  for (const auto& [start, ext] : mirror_) {
    if (ext.extra != 0) {
      out.push_back(MirrorRun{start, ext.count, ext.extra, ext.dirty});
    }
  }
  return out;
}

std::vector<BlockLookupTable::MirrorRun> BlockLookupTable::DirtyRuns() const {
  std::vector<MirrorRun> out;
  for (const auto& [start, ext] : mirror_) {
    if (ext.dirty != 0) {
      out.push_back(MirrorRun{start, ext.count, ext.extra, ext.dirty});
    }
  }
  return out;
}

uint64_t BlockLookupTable::ReplicaBlocksOnTier(TierId tier) const {
  auto it = per_tier_extra_.find(tier);
  return it == per_tier_extra_.end() ? 0 : it->second;
}

uint64_t BlockLookupTable::DirtyBlocksOnTier(TierId tier) const {
  auto it = per_tier_dirty_.find(tier);
  return it == per_tier_dirty_.end() ? 0 : it->second;
}

uint64_t BlockLookupTable::DirtyBlocks() const {
  uint64_t total = 0;
  for (const auto& [tier, count] : per_tier_dirty_) {
    total += count;
  }
  return total;
}

// ---- ExtentTreeBlt ---------------------------------------------------------

TierId ExtentTreeBlt::LookupPrimary(uint64_t block) const {
  auto it = extents_.upper_bound(block);
  if (it == extents_.begin()) {
    return kInvalidTier;
  }
  --it;
  if (block < it->first + it->second.count) {
    return it->second.tier;
  }
  return kInvalidTier;
}

void ExtentTreeBlt::Coalesce(std::map<uint64_t, Extent>::iterator it) {
  // Merge with predecessor.
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.count == it->first &&
        prev->second.tier == it->second.tier) {
      prev->second.count += it->second.count;
      extents_.erase(it);
      it = prev;
    }
  }
  // Merge with successor.
  auto next = std::next(it);
  if (next != extents_.end() &&
      it->first + it->second.count == next->first &&
      it->second.tier == next->second.tier) {
    it->second.count += next->second.count;
    extents_.erase(next);
  }
}

void ExtentTreeBlt::ClearPrimaryRange(uint64_t first_block, uint64_t count) {
  if (count == 0) {
    return;
  }
  const uint64_t end = first_block + count;
  auto it = extents_.upper_bound(first_block);
  if (it != extents_.begin()) {
    --it;
  }
  while (it != extents_.end() && it->first < end) {
    const uint64_t ext_start = it->first;
    const uint64_t ext_end = ext_start + it->second.count;
    const TierId tier = it->second.tier;
    if (ext_end <= first_block) {
      ++it;
      continue;
    }
    const uint64_t lo = std::max(ext_start, first_block);
    const uint64_t hi = std::min(ext_end, end);
    per_tier_[tier] -= hi - lo;
    it = extents_.erase(it);
    if (ext_start < lo) {
      extents_.emplace(ext_start, Extent{lo - ext_start, tier});
    }
    if (hi < ext_end) {
      it = extents_.emplace(hi, Extent{ext_end - hi, tier}).first;
      ++it;
    }
  }
}

void ExtentTreeBlt::SetPrimaryRange(uint64_t first_block, uint64_t count,
                                    TierId tier) {
  if (count == 0) {
    return;
  }
  ClearPrimaryRange(first_block, count);
  auto [it, inserted] = extents_.emplace(first_block, Extent{count, tier});
  (void)inserted;
  per_tier_[tier] += count;
  Coalesce(it);
}

void ExtentTreeBlt::TruncatePrimaryFrom(uint64_t first_block) {
  ClearPrimaryRange(first_block, UINT64_MAX - first_block);
}

std::vector<BlockLookupTable::Run> ExtentTreeBlt::PrimaryRuns(
    uint64_t first_block, uint64_t count) const {
  std::vector<Run> runs;
  if (count == 0) {
    return runs;
  }
  const uint64_t end = first_block + count;
  uint64_t pos = first_block;
  auto it = extents_.upper_bound(first_block);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (first_block < prev->first + prev->second.count) {
      it = prev;
    }
  }
  while (pos < end) {
    if (it == extents_.end() || it->first >= end) {
      runs.push_back(Run{pos, end - pos, kInvalidTier});
      break;
    }
    if (it->first > pos) {
      runs.push_back(Run{pos, it->first - pos, kInvalidTier});
      pos = it->first;
    }
    const uint64_t ext_end = it->first + it->second.count;
    const uint64_t hi = std::min(ext_end, end);
    if (hi > pos) {
      runs.push_back(Run{pos, hi - pos, it->second.tier});
      pos = hi;
    }
    ++it;
  }
  return runs;
}

std::vector<BlockLookupTable::Run> ExtentTreeBlt::AllPrimaryRuns() const {
  std::vector<Run> runs;
  runs.reserve(extents_.size());
  for (const auto& [start, ext] : extents_) {
    runs.push_back(Run{start, ext.count, ext.tier});
  }
  return runs;
}

uint64_t ExtentTreeBlt::PrimaryBlocksOnTier(TierId tier) const {
  auto it = per_tier_.find(tier);
  return it == per_tier_.end() ? 0 : it->second;
}

uint64_t ExtentTreeBlt::TotalPrimaryBlocks() const {
  uint64_t total = 0;
  for (const auto& [tier, count] : per_tier_) {
    total += count;
  }
  return total;
}

uint64_t ExtentTreeBlt::PrimaryMemoryBytes() const {
  // Red-black tree node: key + extent + 3 pointers + color, ~48 bytes.
  return extents_.size() * 48 + sizeof(*this);
}

// ---- ByteArrayBlt ----------------------------------------------------------

TierId ByteArrayBlt::LookupPrimary(uint64_t block) const {
  if (block >= tiers_.size() || tiers_[block] == kHole) {
    return kInvalidTier;
  }
  return tiers_[block];
}

void ByteArrayBlt::SetPrimaryRange(uint64_t first_block, uint64_t count,
                                   TierId tier) {
  if (count == 0) {
    return;
  }
  if (first_block + count > tiers_.size()) {
    tiers_.resize(first_block + count, kHole);
  }
  for (uint64_t b = first_block; b < first_block + count; ++b) {
    if (tiers_[b] != kHole) {
      per_tier_[tiers_[b]]--;
    }
    tiers_[b] = static_cast<uint8_t>(tier);
    per_tier_[tier]++;
  }
}

void ByteArrayBlt::ClearPrimaryRange(uint64_t first_block, uint64_t count) {
  const uint64_t end = std::min<uint64_t>(
      tiers_.size(), count > UINT64_MAX - first_block ? UINT64_MAX
                                                      : first_block + count);
  for (uint64_t b = first_block; b < end; ++b) {
    if (tiers_[b] != kHole) {
      per_tier_[tiers_[b]]--;
      tiers_[b] = kHole;
    }
  }
}

void ByteArrayBlt::TruncatePrimaryFrom(uint64_t first_block) {
  if (first_block >= tiers_.size()) {
    return;
  }
  ClearPrimaryRange(first_block, tiers_.size() - first_block);
  tiers_.resize(first_block);
}

std::vector<BlockLookupTable::Run> ByteArrayBlt::PrimaryRuns(
    uint64_t first_block, uint64_t count) const {
  std::vector<Run> runs;
  uint64_t pos = first_block;
  const uint64_t end = first_block + count;
  while (pos < end) {
    const TierId tier = LookupPrimary(pos);
    uint64_t len = 1;
    while (pos + len < end && LookupPrimary(pos + len) == tier) {
      ++len;
    }
    runs.push_back(Run{pos, len, tier});
    pos += len;
  }
  return runs;
}

std::vector<BlockLookupTable::Run> ByteArrayBlt::AllPrimaryRuns() const {
  std::vector<Run> runs;
  uint64_t pos = 0;
  while (pos < tiers_.size()) {
    if (tiers_[pos] == kHole) {
      ++pos;
      continue;
    }
    const TierId tier = tiers_[pos];
    uint64_t len = 1;
    while (pos + len < tiers_.size() && tiers_[pos + len] == tier) {
      ++len;
    }
    runs.push_back(Run{pos, len, tier});
    pos += len;
  }
  return runs;
}

uint64_t ByteArrayBlt::PrimaryBlocksOnTier(TierId tier) const {
  auto it = per_tier_.find(tier);
  return it == per_tier_.end() ? 0 : it->second;
}

uint64_t ByteArrayBlt::TotalPrimaryBlocks() const {
  uint64_t total = 0;
  for (const auto& [tier, count] : per_tier_) {
    total += count;
  }
  return total;
}

uint64_t ByteArrayBlt::PrimaryMemoryBytes() const {
  return tiers_.capacity() + sizeof(*this);
}

std::unique_ptr<BlockLookupTable> MakeBlt(BltKind kind) {
  if (kind == BltKind::kByteArray) {
    return std::make_unique<ByteArrayBlt>();
  }
  return std::make_unique<ExtentTreeBlt>();
}

}  // namespace mux::core
