#include "src/core/block_lookup_table.h"

#include <algorithm>

namespace mux::core {

// ---- ExtentTreeBlt ---------------------------------------------------------

TierId ExtentTreeBlt::Lookup(uint64_t block) const {
  auto it = extents_.upper_bound(block);
  if (it == extents_.begin()) {
    return kInvalidTier;
  }
  --it;
  if (block < it->first + it->second.count) {
    return it->second.tier;
  }
  return kInvalidTier;
}

void ExtentTreeBlt::Coalesce(std::map<uint64_t, Extent>::iterator it) {
  // Merge with predecessor.
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.count == it->first &&
        prev->second.tier == it->second.tier) {
      prev->second.count += it->second.count;
      extents_.erase(it);
      it = prev;
    }
  }
  // Merge with successor.
  auto next = std::next(it);
  if (next != extents_.end() &&
      it->first + it->second.count == next->first &&
      it->second.tier == next->second.tier) {
    it->second.count += next->second.count;
    extents_.erase(next);
  }
}

void ExtentTreeBlt::ClearRange(uint64_t first_block, uint64_t count) {
  if (count == 0) {
    return;
  }
  const uint64_t end = first_block + count;
  auto it = extents_.upper_bound(first_block);
  if (it != extents_.begin()) {
    --it;
  }
  while (it != extents_.end() && it->first < end) {
    const uint64_t ext_start = it->first;
    const uint64_t ext_end = ext_start + it->second.count;
    const TierId tier = it->second.tier;
    if (ext_end <= first_block) {
      ++it;
      continue;
    }
    const uint64_t lo = std::max(ext_start, first_block);
    const uint64_t hi = std::min(ext_end, end);
    per_tier_[tier] -= hi - lo;
    it = extents_.erase(it);
    if (ext_start < lo) {
      extents_.emplace(ext_start, Extent{lo - ext_start, tier});
    }
    if (hi < ext_end) {
      it = extents_.emplace(hi, Extent{ext_end - hi, tier}).first;
      ++it;
    }
  }
}

void ExtentTreeBlt::SetRange(uint64_t first_block, uint64_t count,
                             TierId tier) {
  if (count == 0) {
    return;
  }
  ClearRange(first_block, count);
  auto [it, inserted] = extents_.emplace(first_block, Extent{count, tier});
  (void)inserted;
  per_tier_[tier] += count;
  Coalesce(it);
}

void ExtentTreeBlt::TruncateFrom(uint64_t first_block) {
  ClearRange(first_block, UINT64_MAX - first_block);
}

std::vector<BlockLookupTable::Run> ExtentTreeBlt::Runs(uint64_t first_block,
                                                       uint64_t count) const {
  std::vector<Run> runs;
  if (count == 0) {
    return runs;
  }
  const uint64_t end = first_block + count;
  uint64_t pos = first_block;
  auto it = extents_.upper_bound(first_block);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (first_block < prev->first + prev->second.count) {
      it = prev;
    }
  }
  while (pos < end) {
    if (it == extents_.end() || it->first >= end) {
      runs.push_back(Run{pos, end - pos, kInvalidTier});
      break;
    }
    if (it->first > pos) {
      runs.push_back(Run{pos, it->first - pos, kInvalidTier});
      pos = it->first;
    }
    const uint64_t ext_end = it->first + it->second.count;
    const uint64_t hi = std::min(ext_end, end);
    if (hi > pos) {
      runs.push_back(Run{pos, hi - pos, it->second.tier});
      pos = hi;
    }
    ++it;
  }
  return runs;
}

std::vector<BlockLookupTable::Run> ExtentTreeBlt::AllRuns() const {
  std::vector<Run> runs;
  runs.reserve(extents_.size());
  for (const auto& [start, ext] : extents_) {
    runs.push_back(Run{start, ext.count, ext.tier});
  }
  return runs;
}

uint64_t ExtentTreeBlt::BlocksOnTier(TierId tier) const {
  auto it = per_tier_.find(tier);
  return it == per_tier_.end() ? 0 : it->second;
}

uint64_t ExtentTreeBlt::TotalBlocks() const {
  uint64_t total = 0;
  for (const auto& [tier, count] : per_tier_) {
    total += count;
  }
  return total;
}

uint64_t ExtentTreeBlt::MemoryBytes() const {
  // Red-black tree node: key + extent + 3 pointers + color, ~48 bytes.
  return extents_.size() * 48 + sizeof(*this);
}

// ---- ByteArrayBlt ----------------------------------------------------------

TierId ByteArrayBlt::Lookup(uint64_t block) const {
  if (block >= tiers_.size() || tiers_[block] == kHole) {
    return kInvalidTier;
  }
  return tiers_[block];
}

void ByteArrayBlt::SetRange(uint64_t first_block, uint64_t count,
                            TierId tier) {
  if (count == 0) {
    return;
  }
  if (first_block + count > tiers_.size()) {
    tiers_.resize(first_block + count, kHole);
  }
  for (uint64_t b = first_block; b < first_block + count; ++b) {
    if (tiers_[b] != kHole) {
      per_tier_[tiers_[b]]--;
    }
    tiers_[b] = static_cast<uint8_t>(tier);
    per_tier_[tier]++;
  }
}

void ByteArrayBlt::ClearRange(uint64_t first_block, uint64_t count) {
  const uint64_t end = std::min<uint64_t>(
      tiers_.size(), count > UINT64_MAX - first_block ? UINT64_MAX
                                                      : first_block + count);
  for (uint64_t b = first_block; b < end; ++b) {
    if (tiers_[b] != kHole) {
      per_tier_[tiers_[b]]--;
      tiers_[b] = kHole;
    }
  }
}

void ByteArrayBlt::TruncateFrom(uint64_t first_block) {
  if (first_block >= tiers_.size()) {
    return;
  }
  ClearRange(first_block, tiers_.size() - first_block);
  tiers_.resize(first_block);
}

std::vector<BlockLookupTable::Run> ByteArrayBlt::Runs(uint64_t first_block,
                                                      uint64_t count) const {
  std::vector<Run> runs;
  uint64_t pos = first_block;
  const uint64_t end = first_block + count;
  while (pos < end) {
    const TierId tier = Lookup(pos);
    uint64_t len = 1;
    while (pos + len < end && Lookup(pos + len) == tier) {
      ++len;
    }
    runs.push_back(Run{pos, len, tier});
    pos += len;
  }
  return runs;
}

std::vector<BlockLookupTable::Run> ByteArrayBlt::AllRuns() const {
  std::vector<Run> runs;
  uint64_t pos = 0;
  while (pos < tiers_.size()) {
    if (tiers_[pos] == kHole) {
      ++pos;
      continue;
    }
    const TierId tier = tiers_[pos];
    uint64_t len = 1;
    while (pos + len < tiers_.size() && tiers_[pos + len] == tier) {
      ++len;
    }
    runs.push_back(Run{pos, len, tier});
    pos += len;
  }
  return runs;
}

uint64_t ByteArrayBlt::BlocksOnTier(TierId tier) const {
  auto it = per_tier_.find(tier);
  return it == per_tier_.end() ? 0 : it->second;
}

uint64_t ByteArrayBlt::TotalBlocks() const {
  uint64_t total = 0;
  for (const auto& [tier, count] : per_tier_) {
    total += count;
  }
  return total;
}

uint64_t ByteArrayBlt::MemoryBytes() const {
  return tiers_.capacity() + sizeof(*this);
}

std::unique_ptr<BlockLookupTable> MakeBlt(BltKind kind) {
  if (kind == BltKind::kByteArray) {
    return std::make_unique<ByteArrayBlt>();
  }
  return std::make_unique<ExtentTreeBlt>();
}

}  // namespace mux::core
