// Device-profile-driven I/O scheduler (§4, "Improving The I/O Scheduler").
//
// The paper: "The I/O scheduler should identify request types, estimate
// their costs, and reorder them to optimize performance. We currently use a
// simple scheduling algorithm based on device profiles." That is what this
// is: per-tier queues, per-request cost estimates derived from the tier's
// DeviceProfile, and a pluggable dispatch order —
//   * kFifo      — arrival order (baseline),
//   * kCostBased — cheapest-estimated-first within a tier (SJF-like),
//   * kElevator  — ascending file offset within a tier (seek-friendly;
//                  meaningful for HDD tiers).
// Priorities (§4 "Configuring Mux": priority/deadline/quota sharing) trump
// the order: a lower priority value always dispatches first.
//
// Mux's background MigrationEngine feeds batches through the scheduler; the
// scheduler benchmarks drive it directly with synthetic mixes.
#ifndef MUX_CORE_IO_SCHEDULER_H_
#define MUX_CORE_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/async_io.h"
#include "src/core/tier.h"
#include "src/obs/metrics.h"

namespace mux::core {

enum class SchedAlgo { kFifo, kCostBased, kElevator };

std::string_view SchedAlgoName(SchedAlgo algo);

struct IoRequest {
  TierId tier = kInvalidTier;
  bool is_write = false;
  uint64_t offset = 0;  // file/device offset, used by the elevator
  uint64_t bytes = 0;
  int priority = 1;  // 0 = highest
  std::function<Status()> execute;
  SimTime enqueue_ns = 0;  // stamped by Submit; feeds sched.queue_wait_ns
};

struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t dispatched = 0;
  uint64_t failures = 0;
  SimTime est_cost_dispatched_ns = 0;
  // Failure detail: how many dispatches failed per tier, and the most
  // recent failure's status. A faulting tier shows up here instead of
  // aborting the whole batch (see RunAll).
  std::map<TierId, uint64_t> failed_tiers;
  Status last_error;
};

class IoScheduler {
 public:
  // `metrics` is optional; when set, every dispatch observes
  // "sched.queue_wait_ns" (submit -> pick) and "sched.service_ns"
  // (execute() duration) on the simulated clock.
  IoScheduler(SchedAlgo algo, SimClock* clock,
              obs::MetricsRegistry* metrics = nullptr);

  void RegisterTier(const TierInfo& tier);

  // Attaches the completion-based I/O core used by DrainMode::kAsync. The
  // core must already have a submission ring registered per tier (Mux wires
  // its own core in). Not owned; pass nullptr to detach.
  void AttachAsyncCore(AsyncIoCore* core) { async_ = core; }

  // Enqueues; execution happens at dispatch time.
  Status Submit(IoRequest request);

  // How RunAll drains the per-tier queues.
  //   kSerial   — round-robin across tiers on the calling thread (the
  //               original behavior; simulated time sums across tiers).
  //   kParallel — one drain thread per non-empty tier, each under a private
  //               time cursor anchored at the drain start; the shared clock
  //               advances by the *max* per-tier drain time, so independent
  //               tiers overlap exactly as independent devices would.
  //               Kept as an ablation of kAsync (thread-per-tier, blocking).
  //   kAsync    — submit-all-then-await through the attached AsyncIoCore:
  //               every picked request is pushed into its tier's submission
  //               ring tagged with a stats-recording continuation, the
  //               drain thread yields until the completion dispatcher has
  //               delivered them all, and the clock advances by the slowest
  //               *successful* completion (queue-depth-aware: per-request
  //               start times come from the ring's channel model). Falls
  //               back to kParallel when no core is attached.
  enum class DrainMode { kSerial, kParallel, kAsync };

  // Dispatches every queued request per the algorithm; per-tier queues run
  // round-robin so one busy tier cannot starve the others. Returns the
  // number that executed successfully. A request whose execute() fails does
  // NOT abort the batch: the remaining requests still dispatch, and the
  // failure is recorded in SchedulerStats (failures / failed_tiers /
  // last_error) for the caller to inspect.
  Result<uint64_t> RunAll(DrainMode mode = DrainMode::kSerial);
  // Dispatches at most one request from the given tier.
  Result<bool> RunOne(TierId tier);

  size_t Pending() const;
  SchedulerStats stats() const;

  // Cost estimate for a request on its tier (exposed for tests/benches).
  SimTime Estimate(const IoRequest& request) const;

 private:
  // Picks the queue index to dispatch next per the algorithm. Requires a
  // non-empty queue and mu_ held.
  size_t PickLocked(const std::deque<IoRequest>& queue,
                    uint64_t head_position) const;
  // The kAsync drain round: pops every queued request in algorithm order
  // and submits it through async_, then awaits the completion group.
  uint64_t RunAllAsyncRound();

  const SchedAlgo algo_;
  SimClock* const clock_;
  obs::MetricsRegistry* const metrics_;  // optional, not owned
  AsyncIoCore* async_ = nullptr;         // optional, not owned

  mutable std::mutex mu_;
  std::map<TierId, device::DeviceProfile> profiles_;
  std::map<TierId, std::deque<IoRequest>> queues_;
  std::map<TierId, uint64_t> head_positions_;  // elevator state
  SchedulerStats stats_;
};

}  // namespace mux::core

#endif  // MUX_CORE_IO_SCHEDULER_H_
