// User-defined tiering policies (§2.1).
//
// Mux decouples tiering policy from mechanism: a policy decides (a) where a
// newly written block goes and (b) which blocks should migrate, and Mux
// executes those decisions. The paper loads policies as kernel modules or
// eBPF programs; the user-space analogue is a registry of named factories —
// applications register a factory at runtime and select policies by name,
// without touching Mux itself.
//
// "All the placement and migration policies in existing tiered file systems
// can be expressed using simple functions" — the built-ins reproduce the
// paper's evaluation policy (LRU demote/promote) plus TPFS-style placement,
// hot/cold classification, and static pinning. See policies.cc.
#ifndef MUX_CORE_POLICY_H_
#define MUX_CORE_POLICY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/core/tier.h"

namespace mux::core {

// Per-tier occupancy snapshot handed to policies.
struct TierUsage {
  TierId id = kInvalidTier;
  std::string name;
  uint32_t speed_rank = 0;  // 0 = fastest
  device::DeviceKind kind = device::DeviceKind::kGeneric;
  uint64_t capacity_bytes = 0;
  uint64_t free_bytes = 0;

  double UsedFraction() const {
    if (capacity_bytes == 0) {
      return 0.0;
    }
    return 1.0 - static_cast<double>(free_bytes) /
                     static_cast<double>(capacity_bytes);
  }
};

// Context for one placement decision.
struct PlacementContext {
  std::string_view path;
  uint64_t io_size = 0;         // bytes of this write
  bool is_sync = false;         // caller will fsync soon / O_SYNC-like
  uint64_t file_size = 0;       // current logical size
  uint64_t block_index = 0;     // first block being placed
  double temperature = 0.0;     // decayed access frequency
  const std::vector<TierUsage>* tiers = nullptr;  // sorted by speed_rank
};

// Per-file summary for migration planning.
struct FileView {
  std::string path;
  uint64_t size = 0;
  SimTime last_access = 0;
  double temperature = 0.0;
  // tier -> primary blocks currently stored there.
  std::map<TierId, uint64_t> blocks_per_tier;
  // tier -> extra (mirror) block copies stored there.
  std::map<TierId, uint64_t> replica_blocks_per_tier;
  // Mirror copies awaiting lazy reconciliation.
  uint64_t dirty_blocks = 0;
};

struct TieringView {
  std::vector<TierUsage> tiers;  // sorted by speed_rank
  std::vector<FileView> files;
  SimTime now = 0;
};

// What a planned task does with residency. kMove is the classic exclusive
// migration (copy then punch the source); kAddReplica copies without
// punching, *adding* residency on `to` (MOST promotion); kDropReplica
// removes the mirror copies on `to` (capacity reclaim — primaries are never
// dropped this way).
enum class MigrationKind { kMove, kAddReplica, kDropReplica };

// One unit of planned data movement.
struct MigrationTask {
  std::string path;
  TierId from = kInvalidTier;  // move only blocks currently on `from`
  TierId to = kInvalidTier;
  // 0 count = whole file.
  uint64_t first_block = 0;
  uint64_t count = 0;
  MigrationKind kind = MigrationKind::kMove;
};

class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;
  virtual std::string_view Name() const = 0;
  // Tier for newly allocated blocks of a write.
  virtual TierId PlaceWrite(const PlacementContext& ctx) = 0;
  // Migration plan for one background round.
  virtual std::vector<MigrationTask> PlanMigrations(
      const TieringView& view) = 0;
};

// Runtime policy registry (the kernel-module/eBPF loading point).
class PolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<TieringPolicy>(const std::string& args)>;

  static PolicyRegistry& Global();

  Status Register(const std::string& name, Factory factory);
  Result<std::unique_ptr<TieringPolicy>> Create(const std::string& name,
                                                const std::string& args = "");
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

// Built-in policy constructors (also registered in the global registry under
// the names "lru", "tpfs", "hotcold", "pin").
std::unique_ptr<TieringPolicy> MakeLruPolicy(double high_watermark = 0.9,
                                             double low_watermark = 0.7,
                                             SimTime promote_window_ns =
                                                 1'000'000'000);
std::unique_ptr<TieringPolicy> MakeTpfsPolicy(uint64_t small_io_bytes = 256 * 1024,
                                              uint64_t large_io_bytes =
                                                  4 * 1024 * 1024,
                                              double hot_threshold = 4.0);
std::unique_ptr<TieringPolicy> MakeHotColdPolicy(double hot_threshold = 8.0,
                                                 double cold_threshold = 1.0);
// rules: "prefix=tier_name,prefix=tier_name"; unmatched paths use the
// fastest tier with space.
std::unique_ptr<TieringPolicy> MakePinPolicy(const std::string& rules);
// Mirror-aware policy (MOST, registered as "mirror"): LRU-style demotion of
// cold primaries, plus hot files gain an *additional* copy on the fastest
// tier (kAddReplica) while replica bytes stay under
// `replica_budget_fraction` of that tier's capacity and its occupancy is
// below `high_watermark`; the coldest mirrored files lose their extra copy
// first (kDropReplica) when either bound is exceeded.
std::unique_ptr<TieringPolicy> MakeMirrorPolicy(
    double hot_threshold = 2.0, double high_watermark = 0.9,
    double replica_budget_fraction = 0.5);

}  // namespace mux::core

#endif  // MUX_CORE_POLICY_H_
