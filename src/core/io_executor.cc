#include "src/core/io_executor.h"

#include <utility>

namespace mux::core {

IoExecutor::IoExecutor(SimClock* clock, int threads_per_tier)
    : clock_(clock), threads_per_tier_(threads_per_tier < 1 ? 1 : threads_per_tier) {}

IoExecutor::~IoExecutor() { Shutdown(); }

void IoExecutor::AddTier(TierId tier) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = pools_[tier];
  if (slot != nullptr) {
    return;
  }
  slot = std::make_unique<TierPool>();
  TierPool* pool = slot.get();
  for (int i = 0; i < threads_per_tier_; ++i) {
    pool->workers.emplace_back([this, pool] { WorkerLoop(pool); });
  }
}

void IoExecutor::RemoveTier(TierId tier) {
  std::unique_ptr<TierPool> pool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(tier);
    if (it == pools_.end()) {
      return;
    }
    pool = std::move(it->second);
    pools_.erase(it);
  }
  StopPool(pool.get());
}

void IoExecutor::Shutdown() {
  std::map<TierId, std::unique_ptr<TierPool>> pools;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pools.swap(pools_);
  }
  for (auto& [tier, pool] : pools) {
    StopPool(pool.get());
  }
}

void IoExecutor::StopPool(TierPool* pool) {
  {
    std::lock_guard<std::mutex> lock(pool->mu);
    pool->stop = true;
  }
  pool->cv.notify_all();
  for (std::thread& t : pool->workers) {
    t.join();
  }
  // Workers drain the queue before exiting, but belt-and-braces: complete
  // anything that slipped in after the last drain, inline.
  for (Job& job : pool->queue) {
    Deliver(&job, RunJob(clock_, job.origin, job.fn));
  }
  pool->queue.clear();
}

void IoExecutor::Deliver(Job* job, IoCompletion completion) {
  if (job->callback) {
    job->callback(completion);
  } else {
    job->done.set_value(std::move(completion));
  }
}

IoCompletion IoExecutor::RunJob(SimClock* clock, SimTime origin,
                                const std::function<Status()>& fn) {
  ScopedTimeCursor cursor(clock, origin);
  IoCompletion completion;
  completion.status = fn();
  completion.elapsed_ns = cursor.Release();
  return completion;
}

void IoExecutor::WorkerLoop(TierPool* pool) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(pool->mu);
      pool->cv.wait(lock, [pool] { return pool->stop || !pool->queue.empty(); });
      if (pool->queue.empty()) {
        return;  // stop requested and nothing left to drain
      }
      job = std::move(pool->queue.front());
      pool->queue.pop_front();
    }
    Deliver(&job, RunJob(clock_, job.origin, job.fn));
  }
}

std::future<IoCompletion> IoExecutor::Submit(TierId tier, SimTime origin,
                                             std::function<Status()> fn) {
  Job job;
  job.origin = origin;
  job.fn = std::move(fn);
  std::future<IoCompletion> result = job.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(tier);
    if (it != pools_.end()) {
      TierPool* pool = it->second.get();
      {
        std::lock_guard<std::mutex> pool_lock(pool->mu);
        if (!pool->stop) {
          pool->queue.push_back(std::move(job));
          pool->cv.notify_one();
          return result;
        }
      }
    }
  }
  // No pool (unknown tier or shutting down): run inline with the same cursor
  // discipline so accounting stays identical.
  job.done.set_value(RunJob(clock_, origin, job.fn));
  return result;
}

void IoExecutor::SubmitWithCallback(
    TierId tier, SimTime origin, std::function<Status()> fn,
    std::function<void(const IoCompletion&)> done) {
  Job job;
  job.origin = origin;
  job.fn = std::move(fn);
  job.callback = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(tier);
    if (it != pools_.end()) {
      TierPool* pool = it->second.get();
      {
        std::lock_guard<std::mutex> pool_lock(pool->mu);
        if (!pool->stop) {
          pool->queue.push_back(std::move(job));
          pool->cv.notify_one();
          return;
        }
      }
    }
  }
  job.callback(RunJob(clock_, origin, job.fn));
}

bool IoExecutor::HasPool(TierId tier) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pools_.count(tier) != 0;
}

}  // namespace mux::core
