// Completion-based submission/completion I/O core (ROADMAP item 2).
//
// The pre-existing dispatch path was thread-per-op with blocking charges: an
// op either executed its device work inline or parked its thread on a
// future while an executor worker ran the chain. Either way a thread was
// pinned per in-flight op and device queue depth was a fiction — the
// DeviceProfile::queue_depth field existed but nothing consumed it.
//
// AsyncIoCore inverts that control flow:
//
//   * Submission rings. Each registered queue (one per tier for Mux's data
//     path; the traffic engine registers a generic "ops" ring) has a bounded
//     submission deque. Submit() enqueues the request tagged with a
//     continuation and returns immediately with a ticket; the submitting
//     thread never blocks on the device.
//   * Device servers. A small pool of server threads per ring claims
//     requests in FIFO order (reordering is the IoScheduler's job, upstream)
//     and executes them under a private time cursor, so simulated charges
//     stay off the shared clock until the owning op merges them.
//   * Simulated queue depth. Each ring models DeviceProfile::queue_depth
//     channels as a min-heap of channel-free times. A request's service
//     starts at max(submit time, earliest free channel): a deep SSD queue
//     (queue_depth 16) absorbs a burst with no added wait, while the single
//     HDD channel serializes it — the two finally diverge in simulated
//     charging. The wait is first-class: AsyncCompletion::wait_ns() and the
//     "sched.qdepth.wait_ns" histogram.
//   * Completion dispatcher + resume pool. Servers push finished requests
//     onto a central completion queue drained by one dispatcher thread.
//     With `resume_workers == 0` the dispatcher invokes each continuation
//     itself (legacy/ablation mode). With a pool, the dispatcher only hands
//     the completion to a small fixed set of resume workers, which invoke
//     the continuation — so a slow continuation (an op's commit phase)
//     never stalls completion draining, and ops are resumed by the pool
//     rather than by a thread parked per op. Either way the continuation
//     runs exactly once — success, failure (EIO/ENOSPC travels in
//     AsyncCompletion::status), cancellation, ring rejection, or shutdown
//     drain.
//
// Continuation lock rules (op state machine, see DESIGN.md
// "Submission/completion I/O core"):
//
//   * Continuations run on a resume worker (or the dispatcher when no pool
//     is configured) with NO AsyncIoCore lock held.
//   * Re-entrant Submit() from a continuation is LEGAL: a resumed op phase
//     may fan out its next round of device requests directly. Cancel() is
//     equally legal.
//   * CompletionGroup::Await() from a continuation is still FORBIDDEN: the
//     group is fed by this core, and with resume_workers == 0 the await
//     would park the dispatcher on completions only the dispatcher can
//     deliver. The compat shim keeps the old rule; state-machine code uses
//     FanIn (non-blocking join) instead.
//   * Continuations must not block on locks held across a Submit()+resume
//     window by other ops. Mux ops hold only their per-inode OpGate across
//     suspension, and gate handoff is queued (never blocking) on this pool.
//
// "sched.completion_wait_ns" records the full wall lag from completion
// enqueue to continuation start; the split parts are "sched.dispatch_ns"
// (enqueue -> dispatcher handed the completion to the resume pool) and
// "sched.resume_wait_ns" (handed off -> continuation running), so queueing
// in the resumption pool is observable separately from dispatcher lag.
//
// Submissions to an unknown queue or after Shutdown execute inline on the
// caller's thread (same cursor discipline) and the continuation runs inline
// too, so shutdown never strands a request — mirroring IoExecutor.
#ifndef MUX_CORE_ASYNC_IO_H_
#define MUX_CORE_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/tier.h"
#include "src/obs/metrics.h"

namespace mux::core {

// One finished (or cancelled) submission, delivered to the continuation.
struct AsyncCompletion {
  Status status;
  bool cancelled = false;
  SimTime submit_ns = 0;    // sim time the request entered the ring
  SimTime start_ns = 0;     // sim time a device channel picked it up
  SimTime complete_ns = 0;  // sim time service finished

  SimTime wait_ns() const { return start_ns - submit_ns; }       // queueing
  SimTime service_ns() const { return complete_ns - start_ns; }  // device
  SimTime total_ns() const { return complete_ns - submit_ns; }
};

using AsyncContinuation = std::function<void(const AsyncCompletion&)>;

// Handle for cancellation. Only valid until the continuation has run.
struct AsyncTicket {
  TierId queue = kInvalidTier;
  uint64_t seq = 0;
  bool ok() const { return queue != kInvalidTier; }
};

struct AsyncIoRequest {
  TierId queue = kInvalidTier;
  bool is_write = false;
  uint64_t bytes = 0;
  // Sim time the submitting op observed at submit; waits are measured from
  // here and the continuation's total_ns() is relative to it.
  SimTime origin = 0;
  // The device work. Runs on a server thread under a private time cursor
  // anchored at the computed channel start time.
  std::function<Status()> fn;
  // Invoked exactly once from a resume worker / the completion dispatcher
  // (or inline on the rejection/shutdown/unknown-queue fallbacks).
  AsyncContinuation on_complete;
};

struct AsyncCoreStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;   // continuations delivered (any outcome)
  uint64_t failed = 0;      // completions carrying !status.ok()
  uint64_t cancelled = 0;   // cancelled before a server claimed them
  uint64_t rejected = 0;    // bounded ring was full at submit
};

class AsyncIoCore {
 public:
  // `metrics` is optional; when set, each queue observes
  // "sched.qdepth.<name>" (ring occupancy at submit), "sched.qdepth.wait_ns"
  // (sim channel wait), "sched.completion_wait_ns" (wall enqueue -> resume)
  // and its split parts "sched.dispatch_ns" / "sched.resume_wait_ns".
  // `resume_workers` sizes the continuation-resumption pool; 0 keeps the
  // legacy mode where the dispatcher thread invokes continuations itself.
  explicit AsyncIoCore(SimClock* clock,
                       obs::MetricsRegistry* metrics = nullptr,
                       int resume_workers = 0);
  ~AsyncIoCore();

  AsyncIoCore(const AsyncIoCore&) = delete;
  AsyncIoCore& operator=(const AsyncIoCore&) = delete;

  // Registers a submission ring. `queue_depth` is the number of simulated
  // device channels (DeviceProfile::queue_depth for tier rings); `servers`
  // is the host-thread pool size; `bound` caps the ring (0 = unbounded;
  // Submit on a full bounded ring fails with kBusy and counts `rejected`).
  void RegisterQueue(TierId queue, std::string name, uint32_t queue_depth,
                     int servers = 1, size_t bound = 0);
  // Drains the ring and joins its servers. Later submits run inline.
  void UnregisterQueue(TierId queue);
  // Stops every ring, the completion dispatcher, and the resume pool (in
  // that order; queued resumptions are drained, never dropped).
  void Shutdown();

  // Enqueues the request. The continuation runs exactly once in EVERY
  // outcome: normal completion, failure, cancellation, shutdown fallback —
  // and on a full bounded ring it runs inline as cancelled-with-kBusy
  // before Submit returns the kBusy error (so group awaiters never hang).
  // The only paths that never invoke it are the InvalidArgument returns for
  // a missing `fn`/`on_complete`, which are caller bugs.
  Result<AsyncTicket> Submit(AsyncIoRequest request);

  // Cancels a queued request: if no server has claimed it yet it is removed
  // and its continuation receives {cancelled=true, status=kBusy}; returns
  // true. Returns false when the request already started (its continuation
  // will run with the real outcome) or the ticket is unknown.
  bool Cancel(const AsyncTicket& ticket);

  // Enqueues a task onto the resume pool — how op phases hop threads
  // without a device completion (per-inode gate grants, deferred commits).
  // Runs inline on the caller when no pool is configured or after Shutdown.
  void Resume(std::function<void()> fn);

  // Current ring occupancy (racy sample; monitoring only).
  size_t QueueDepth(TierId queue) const;
  // Tasks queued for the resume pool (racy sample; monitoring only).
  size_t ResumeQueueDepth() const;
  int resume_workers() const { return resume_worker_count_; }
  AsyncCoreStats stats() const;

 private:
  struct Pending {
    uint64_t seq = 0;
    AsyncIoRequest request;
  };

  struct Ring {
    std::string name;
    std::string qdepth_metric;  // "sched.qdepth.<name>", built once
    uint32_t depth = 1;
    size_t bound = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    std::vector<SimTime> channels;  // min-heap of channel free times
    std::vector<std::thread> servers;
    bool stop = false;
  };

  struct Done {
    AsyncContinuation on_complete;
    AsyncCompletion completion;
    uint64_t wall_enqueue_ns = 0;
  };

  // One unit of resume-pool work: either a completion delivery or a bare
  // Resume() task.
  struct ResumeTask {
    std::function<void()> fn;
    uint64_t wall_enqueue_ns = 0;
  };

  void ServerLoop(Ring* ring);
  void StopRing(Ring* ring);
  void PushDone(Done done);
  void DispatcherLoop();
  void ResumeLoop();
  // Counts delivery stats and invokes the continuation (no locks held
  // around the invoke).
  void Deliver(Done done);
  // Executes `request` inline (unknown queue / shutdown fallback): no
  // channel model, start == origin, continuation invoked on this thread.
  void RunInline(AsyncIoRequest request);
  static uint64_t WallNs();

  SimClock* const clock_;
  obs::MetricsRegistry* const metrics_;  // optional, not owned
  const int resume_worker_count_;

  mutable std::mutex mu_;  // guards rings_ map shape + seq + stats
  std::map<TierId, std::unique_ptr<Ring>> rings_;
  uint64_t next_seq_ = 1;
  AsyncCoreStats stats_;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::deque<Done> done_queue_;
  bool done_stop_ = false;
  std::thread dispatcher_;

  mutable std::mutex resume_mu_;
  std::condition_variable resume_cv_;
  std::deque<ResumeTask> resume_queue_;
  bool resume_stop_ = false;
  std::vector<std::thread> resume_pool_;
};

// Join figures shared by FanIn (default path) and CompletionGroup (shim):
// first error wins, plus the max/total charge figures the owning op needs
// to merge simulated time (charging max_total_ns lands the overlap-charged
// cost in the op's timeline, exactly like the executor join).
struct AsyncJoined {
  Status status;                // first failure (cancellations included)
  SimTime max_total_ns = 0;     // max wait+service over ALL completions
  SimTime max_ok_total_ns = 0;  // ... over successful completions only
  SimTime max_wait_ns = 0;
  SimTime sum_service_ns = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
};

// Non-blocking fan-in: the op state machine's replacement for
// CompletionGroup on the default data path. Create() fixes the expected
// completion count up front; Add() returns continuations to hand to
// Submit(); the LAST completion to arrive fires `done` inline on its
// delivering thread (a resume worker on the default path — or the
// submitting thread itself when a bounded ring rejects inline), with the
// same Joined aggregation CompletionGroup produced. No thread ever parks:
// the shared_ptr keeps the join state alive until the final continuation
// has run. `done` must not block; it may Submit() follow-up requests.
class FanIn : public std::enable_shared_from_this<FanIn> {
 public:
  using Joined = AsyncJoined;
  using DoneFn = std::function<void(const Joined&)>;

  // `expected` == 0 fires `done` before Create returns (on this thread).
  static std::shared_ptr<FanIn> Create(size_t expected, DoneFn done);

  // Returns the continuation for one expected submission. Every Add()'d
  // continuation must eventually be invoked (Submit guarantees this in
  // every outcome); calling Add() more than `expected` times is a bug.
  AsyncContinuation Add();
  // Wraps `inner` so it observes the completion before the join arrives.
  AsyncContinuation Add(AsyncContinuation inner);

 private:
  FanIn(size_t expected, DoneFn done)
      : expected_(expected), done_(std::move(done)) {}

  void Arrive(const AsyncCompletion& completion);

  std::mutex mu_;
  size_t expected_;
  Joined joined_;
  DoneFn done_;
};

// One-shot latch: how a synchronous wrapper (Mux::Read over ReadAsync, the
// scheduler's round join) waits for an op state machine to finish. This is
// a plain event, not a CompletionGroup — the waiter is a client-facing
// thread whose API contract is blocking, never a resume worker.
class OpEvent {
 public:
  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      signaled_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return signaled_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

// Await helper for submit-all-then-await — the COMPAT/ABLATION SHIM. The
// default data path no longer blocks here (op state machines join via
// FanIn); this survives for the legacy `continuation_ops=false` dispatch
// path and ablation benches. Hand Add()'s continuation to N submissions,
// then Await() blocks until all N completions are delivered and returns
// the join. The group must outlive every continuation, which Await()
// guarantees. Never call Await() from a continuation (see lock rules
// above). The global await counter lets regression tests assert the
// default path executed zero blocking joins.
class CompletionGroup {
 public:
  using Joined = AsyncJoined;

  // Returns the continuation for one submission. Call before Await().
  AsyncContinuation Add();
  // Wraps `inner` so it observes the completion before the group join.
  AsyncContinuation Add(AsyncContinuation inner);

  Joined Await();

  // Process-wide count of Await() calls that have started (parked or not).
  static uint64_t await_count() {
    return awaits_.load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<uint64_t> awaits_;

  std::mutex mu_;
  std::condition_variable cv_;
  size_t expected_ = 0;
  Joined joined_;
};

}  // namespace mux::core

#endif  // MUX_CORE_ASYNC_IO_H_
