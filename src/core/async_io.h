// Completion-based submission/completion I/O core (ROADMAP item 2).
//
// The pre-existing dispatch path was thread-per-op with blocking charges: an
// op either executed its device work inline or parked its thread on a
// future while an executor worker ran the chain. Either way a thread was
// pinned per in-flight op and device queue depth was a fiction — the
// DeviceProfile::queue_depth field existed but nothing consumed it.
//
// AsyncIoCore inverts that control flow:
//
//   * Submission rings. Each registered queue (one per tier for Mux's data
//     path; the traffic engine registers a generic "ops" ring) has a bounded
//     submission deque. Submit() enqueues the request tagged with a
//     continuation and returns immediately with a ticket; the submitting
//     thread never blocks on the device.
//   * Device servers. A small pool of server threads per ring claims
//     requests in FIFO order (reordering is the IoScheduler's job, upstream)
//     and executes them under a private time cursor, so simulated charges
//     stay off the shared clock until the awaiting op merges them.
//   * Simulated queue depth. Each ring models DeviceProfile::queue_depth
//     channels as a min-heap of channel-free times. A request's service
//     starts at max(submit time, earliest free channel): a deep SSD queue
//     (queue_depth 16) absorbs a burst with no added wait, while the single
//     HDD channel serializes it — the two finally diverge in simulated
//     charging. The wait is first-class: AsyncCompletion::wait_ns() and the
//     "sched.qdepth.wait_ns" histogram.
//   * Completion dispatcher. Servers push finished requests onto a central
//     completion queue drained by one dispatcher thread, which invokes each
//     continuation exactly once — whether the request succeeded, failed
//     (EIO/ENOSPC travels in AsyncCompletion::status), or was cancelled
//     before dispatch. "sched.completion_wait_ns" records how long a
//     completion waited for its continuation to run (wall ns; the dispatch
//     lag is host scheduling, not simulated device time).
//
// Lock hierarchy (continuation-resume rules, see DESIGN.md "Concurrency
// model"): continuations run on the completion dispatcher thread with NO
// AsyncIoCore lock held, but they must not submit to or cancel on the same
// core re-entrantly-blocking (Await inside a continuation deadlocks the
// dispatcher). Mux continuations only record stats and signal a
// CompletionGroup; the awaiting op thread does all lock-holding work.
//
// Submissions to an unknown queue or after Shutdown execute inline on the
// caller's thread (same cursor discipline) and the continuation runs inline
// too, so shutdown never strands a request — mirroring IoExecutor.
#ifndef MUX_CORE_ASYNC_IO_H_
#define MUX_CORE_ASYNC_IO_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/tier.h"
#include "src/obs/metrics.h"

namespace mux::core {

// One finished (or cancelled) submission, delivered to the continuation.
struct AsyncCompletion {
  Status status;
  bool cancelled = false;
  SimTime submit_ns = 0;    // sim time the request entered the ring
  SimTime start_ns = 0;     // sim time a device channel picked it up
  SimTime complete_ns = 0;  // sim time service finished

  SimTime wait_ns() const { return start_ns - submit_ns; }       // queueing
  SimTime service_ns() const { return complete_ns - start_ns; }  // device
  SimTime total_ns() const { return complete_ns - submit_ns; }
};

using AsyncContinuation = std::function<void(const AsyncCompletion&)>;

// Handle for cancellation. Only valid until the continuation has run.
struct AsyncTicket {
  TierId queue = kInvalidTier;
  uint64_t seq = 0;
  bool ok() const { return queue != kInvalidTier; }
};

struct AsyncIoRequest {
  TierId queue = kInvalidTier;
  bool is_write = false;
  uint64_t bytes = 0;
  // Sim time the submitting op observed at submit; waits are measured from
  // here and the continuation's total_ns() is relative to it.
  SimTime origin = 0;
  // The device work. Runs on a server thread under a private time cursor
  // anchored at the computed channel start time.
  std::function<Status()> fn;
  // Invoked exactly once from the completion dispatcher (or inline on the
  // shutdown/unknown-queue fallback).
  AsyncContinuation on_complete;
};

struct AsyncCoreStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;   // continuations delivered (any outcome)
  uint64_t failed = 0;      // completions carrying !status.ok()
  uint64_t cancelled = 0;   // cancelled before a server claimed them
  uint64_t rejected = 0;    // bounded ring was full at submit
};

class AsyncIoCore {
 public:
  // `metrics` is optional; when set, each queue observes
  // "sched.qdepth.<name>" (ring occupancy at submit), "sched.qdepth.wait_ns"
  // (sim channel wait) and "sched.completion_wait_ns" (wall dispatch lag).
  explicit AsyncIoCore(SimClock* clock,
                       obs::MetricsRegistry* metrics = nullptr);
  ~AsyncIoCore();

  AsyncIoCore(const AsyncIoCore&) = delete;
  AsyncIoCore& operator=(const AsyncIoCore&) = delete;

  // Registers a submission ring. `queue_depth` is the number of simulated
  // device channels (DeviceProfile::queue_depth for tier rings); `servers`
  // is the host-thread pool size; `bound` caps the ring (0 = unbounded;
  // Submit on a full bounded ring fails with kBusy and counts `rejected`).
  void RegisterQueue(TierId queue, std::string name, uint32_t queue_depth,
                     int servers = 1, size_t bound = 0);
  // Drains the ring and joins its servers. Later submits run inline.
  void UnregisterQueue(TierId queue);
  // Stops every ring and the completion dispatcher.
  void Shutdown();

  // Enqueues the request. The continuation runs exactly once in EVERY
  // outcome: normal completion, failure, cancellation, shutdown fallback —
  // and on a full bounded ring it runs inline as cancelled-with-kBusy
  // before Submit returns the kBusy error (so group awaiters never hang).
  // The only paths that never invoke it are the InvalidArgument returns for
  // a missing `fn`/`on_complete`, which are caller bugs.
  Result<AsyncTicket> Submit(AsyncIoRequest request);

  // Cancels a queued request: if no server has claimed it yet it is removed
  // and its continuation receives {cancelled=true, status=kBusy}; returns
  // true. Returns false when the request already started (its continuation
  // will run with the real outcome) or the ticket is unknown.
  bool Cancel(const AsyncTicket& ticket);

  // Current ring occupancy (racy sample; monitoring only).
  size_t QueueDepth(TierId queue) const;
  AsyncCoreStats stats() const;

 private:
  struct Pending {
    uint64_t seq = 0;
    AsyncIoRequest request;
  };

  struct Ring {
    std::string name;
    std::string qdepth_metric;  // "sched.qdepth.<name>", built once
    uint32_t depth = 1;
    size_t bound = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    std::vector<SimTime> channels;  // min-heap of channel free times
    std::vector<std::thread> servers;
    bool stop = false;
  };

  struct Done {
    AsyncContinuation on_complete;
    AsyncCompletion completion;
    uint64_t wall_enqueue_ns = 0;
  };

  void ServerLoop(Ring* ring);
  void StopRing(Ring* ring);
  void PushDone(Done done);
  void DispatcherLoop();
  // Executes `request` inline (unknown queue / shutdown fallback): no
  // channel model, start == origin, continuation invoked on this thread.
  void RunInline(AsyncIoRequest request);
  static uint64_t WallNs();

  SimClock* const clock_;
  obs::MetricsRegistry* const metrics_;  // optional, not owned

  mutable std::mutex mu_;  // guards rings_ map shape + seq + stats
  std::map<TierId, std::unique_ptr<Ring>> rings_;
  uint64_t next_seq_ = 1;
  AsyncCoreStats stats_;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::deque<Done> done_queue_;
  bool done_stop_ = false;
  std::thread dispatcher_;
};

// Await helper for submit-all-then-await: hand Add()'s continuation to N
// submissions, then Await() blocks until all N completions delivered and
// returns the join — first error wins, plus the max/total charge figures the
// awaiting op needs to merge simulated time (Advance(max_total_ns) lands the
// overlap-charged cost in the op's cursor, exactly like the executor join).
// The group must outlive every continuation, which Await() guarantees.
class CompletionGroup {
 public:
  struct Joined {
    Status status;                // first failure (cancellations included)
    SimTime max_total_ns = 0;     // max wait+service over ALL completions
    SimTime max_ok_total_ns = 0;  // ... over successful completions only
    SimTime max_wait_ns = 0;
    SimTime sum_service_ns = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
  };

  // Returns the continuation for one submission. Call before Await().
  AsyncContinuation Add();
  // Wraps `inner` so it observes the completion before the group join.
  AsyncContinuation Add(AsyncContinuation inner);

  Joined Await();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t expected_ = 0;
  Joined joined_;
};

}  // namespace mux::core

#endif  // MUX_CORE_ASYNC_IO_H_
