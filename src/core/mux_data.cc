// Mux data path: the VFS Call Processor (split/dispatch/merge), the OCC
// migration engine, the policy runner, and the bookkeeper glue.
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/core/mux.h"
#include "src/core/mux_internal.h"
#include "src/vfs/path.h"

namespace mux::core {

using internal::Decay;
using internal::kRootIno;

Result<const TierInfo*> Mux::FindTier(const std::vector<TierInfo>& tiers,
                                      TierId id) {
  for (const TierInfo& tier : tiers) {
    if (tier.id == id) {
      return &tier;
    }
  }
  return NotFoundError("unknown tier id");
}

// ---- read path ---------------------------------------------------------------

Result<uint64_t> Mux::Read(vfs::FileHandle handle, uint64_t offset,
                           uint64_t length, uint8_t* out) {
  const SimTime start = clock_->Now();
  OpAdmit();
  ChargeDispatch();
  auto ctx_or = BeginOp(handle, vfs::OpenFlags::kRead);
  if (!ctx_or.ok()) {
    OpRetire();
    return ctx_or.status();
  }
  OpCtx ctx = std::move(*ctx_or);
  MuxInode& inode = *ctx.file.inode;
  Result<uint64_t> result = uint64_t{0};
  {
    // Shared: readers of one file proceed concurrently; writers/truncate/
    // migration-commit take the exclusive side.
    std::shared_lock<OpGate> file_lock(inode.mu);
    // Per-op time cursor, installed AFTER the lock so ops that actually
    // serialized on the file lock do not falsely overlap in simulated time.
    // It merges (cursor destructs before the lock releases) via CAS-max, so
    // concurrent readers' latencies overlap instead of summing.
    ScopedTimeCursor op_cursor(clock_);
    result = ReadLocked(inode, ctx, offset, length, out);
  }
  RecordOp("read", "mux.read.latency_ns", result.ok() ? *result : 0, start);
  OpRetire();
  return result;
}

std::vector<const TierInfo*> Mux::RankReadCopies(
    const ResidencySet& set, const std::vector<TierInfo>& tiers,
    const std::map<TierId, uint64_t>& local_load, uint64_t bytes) const {
  // Candidates: the primary plus every clean mirror. `tiers` is sorted by
  // speed_rank, so the static order falls out of the walk.
  std::vector<const TierInfo*> copies;
  for (const TierInfo& tier : tiers) {
    if (set.CleanOn(tier.id)) {
      copies.push_back(&tier);
    }
  }
  if (copies.size() <= 1 || !options_.load_aware_reads) {
    return copies;
  }
  // Load-aware selection: earliest projected completion wins. The backlog
  // term spreads the device ring's current occupancy over its simulated
  // channels; local_load chains this op's own earlier assignments (segments
  // on one tier serialize into one chain in DispatchSegments).
  size_t best = 0;
  double best_finish = 0;
  for (size_t i = 0; i < copies.size(); ++i) {
    const TierInfo* tier = copies[i];
    const double est =
        static_cast<double>(tier->profile.EstimateReadNs(bytes));
    const uint32_t channels = std::max(1u, tier->profile.queue_depth);
    const double backlog =
        async_ != nullptr
            ? static_cast<double>(async_->QueueDepth(tier->id)) /
                  static_cast<double>(channels) * est
            : 0.0;
    auto it = local_load.find(tier->id);
    const double chained =
        it != local_load.end() ? static_cast<double>(it->second) : 0.0;
    const double finish = backlog + chained + est;
    if (i == 0 || finish < best_finish) {
      best = i;
      best_finish = finish;
    }
  }
  if (best != 0) {
    std::rotate(copies.begin(), copies.begin() + best,
                copies.begin() + best + 1);
  }
  return copies;
}

Result<uint64_t> Mux::ReadLocked(MuxInode& inode, const OpCtx& ctx,
                                 uint64_t offset, uint64_t length,
                                 uint8_t* out) {
  MUX_ASSIGN_OR_RETURN(ReadPlan plan,
                       PlanReadLocked(inode, ctx, offset, length, out));
  if (plan.n == 0) {
    return uint64_t{0};
  }
  MUX_RETURN_IF_ERROR(DispatchSegments(std::move(plan.jobs)));
  FinishReadLocked(inode, plan.last_tier);
  return plan.n;
}

Result<Mux::ReadPlan> Mux::PlanReadLocked(MuxInode& inode, const OpCtx& ctx,
                                          uint64_t offset, uint64_t length,
                                          uint8_t* out) {
  ReadPlan plan;
  const uint64_t size = inode.attrs.size();
  if (offset >= size || length == 0) {
    return plan;
  }
  const uint64_t n = std::min(length, size - offset);
  const uint64_t first_block = offset / kBlockSize;
  const uint64_t last_block = (offset + n - 1) / kBlockSize;

  ChargeSw("mux.sw.blt_ns", options_.costs.blt_lookup_ns);
  const auto runs =
      inode.blt->ResidencyRuns(first_block, last_block - first_block + 1);
  if (runs.size() > 1) {
    ChargeSw("mux.sw.split_ns", options_.costs.split_segment_ns * (runs.size() - 1));
    hot_stats_.split_segments.fetch_add(runs.size() - 1,
                                        std::memory_order_relaxed);
  }

  // Split the request into per-run segment jobs; holes are served inline
  // (memset costs no device time). Each job writes a disjoint slice of
  // `out`, so the segments can run concurrently when they land on different
  // tiers (DispatchSegments overlaps their simulated latencies).
  //
  // Multi-resident runs additionally stripe: the run is cut into
  // kReadStripeBlocks pieces and each piece is assigned to the copy with the
  // earliest projected completion (RankReadCopies), with `local_load`
  // chaining this op's own assignments — so one large read of a mirrored
  // range spreads across its copies. Single-copy runs take exactly the old
  // one-segment path.
  constexpr uint64_t kReadStripeBlocks = 256;  // 1 MiB
  std::map<TierId, uint64_t> local_load;
  uint64_t stripe_pieces = 0;
  plan.jobs.reserve(runs.size());
  for (const auto& run : runs) {
    const uint64_t run_lo = std::max(offset, run.first_block * kBlockSize);
    const uint64_t run_hi =
        std::min(offset + n, (run.first_block + run.count) * kBlockSize);
    if (run_lo >= run_hi) {
      continue;
    }
    if (!run.set.Mapped()) {
      std::memset(out + (run_lo - offset), 0, run_hi - run_lo);
      continue;
    }
    const bool mirrored = (run.set.extra & ~run.set.dirty) != 0;
    const uint64_t piece_bytes =
        mirrored ? kReadStripeBlocks * kBlockSize : run_hi - run_lo;
    for (uint64_t lo = run_lo; lo < run_hi;) {
      const uint64_t hi = std::min(run_hi, lo + piece_bytes);
      auto copies = RankReadCopies(run.set, ctx.tiers(), local_load, hi - lo);
      if (copies.empty()) {
        return NotFoundError("no resident copy for mapped block");
      }
      const TierInfo* serving = copies.front();
      local_load[serving->id] += serving->profile.EstimateReadNs(hi - lo);
      if (serving->id != run.set.primary) {
        metrics_.Add("mux.replica.read_hits", 1);
      }
      plan.last_tier = serving->id;
      if (lo != run_lo) {
        ++stripe_pieces;
      }
      plan.jobs.push_back(SegmentJob{
          serving->id, [this, &inode, &ctx, copies = std::move(copies), lo,
                        hi, offset, out]() -> Status {
            return ReadRunSegment(inode, ctx, copies, lo, hi, offset, out);
          }});
      lo = hi;
    }
  }
  if (stripe_pieces > 0) {
    ChargeSw("mux.sw.split_ns", options_.costs.split_segment_ns * stripe_pieces);
    hot_stats_.split_segments.fetch_add(stripe_pieces,
                                        std::memory_order_relaxed);
  }
  plan.n = n;
  return plan;
}

void Mux::FinishReadLocked(MuxInode& inode, TierId last_tier) {
  // atime affinity: the file system that fetched the last block (§2.3).
  // meta_mu because concurrent shared-lock readers race on these fields.
  {
    std::lock_guard<std::mutex> meta_lock(inode.meta_mu);
    inode.attrs.UpdateAtime(clock_->Now(),
                            last_tier == kInvalidTier
                                ? inode.attrs.Owner(Attr::kAtime)
                                : last_tier);
  }
  ChargeSw("mux.sw.affinity_ns", options_.costs.affinity_update_ns);
  Touch(inode);
  hot_stats_.reads.fetch_add(1, std::memory_order_relaxed);
}

Status Mux::ReadFromCopies(MuxInode& inode,
                           const std::vector<const TierInfo*>& copies,
                           uint64_t offset, uint64_t length, uint8_t* out) {
  Status last = NotFoundError("no copy available");
  for (size_t i = 0; i < copies.size(); ++i) {
    const TierInfo* tier = copies[i];
    auto shadow = ShadowHandleLocked(inode, *tier, /*create=*/false);
    if (shadow.ok()) {
      auto got = tier->fs->Read(*shadow, offset, length, out);
      if (got.ok()) {
        if (*got < length) {
          // The shadow is shorter than the mapping implies (e.g. tail block
          // of the file): the remainder reads as zeros.
          std::memset(out + *got, 0, length - *got);
        }
        // A successful read ends any failure episode this tier was in.
        const uint32_t bit = ResidencySet::Bit(tier->id);
        if (bit != 0 &&
            (failing_tiers_.load(std::memory_order_relaxed) & bit) != 0) {
          failing_tiers_.fetch_and(~bit, std::memory_order_relaxed);
        }
        return Status::Ok();
      }
      last = got.status();
    } else {
      last = shadow.status();
    }
    if (i + 1 < copies.size()) {
      // Fail over to the next surviving copy. Every failover counts; the
      // warning logs once per tier-failure episode (bit 0->1), not per op.
      metrics_.Add("mux.replica.failover", 1);
      const uint32_t bit = ResidencySet::Bit(tier->id);
      if (bit != 0 &&
          (failing_tiers_.fetch_or(bit, std::memory_order_relaxed) & bit) ==
              0) {
        MUX_LOG(kWarning) << "mux: copy on tier " << tier->name
                          << " unreadable (" << last
                          << "), failing over to surviving copies";
      }
    }
  }
  return last;
}

Status Mux::ReadRunSegment(MuxInode& inode, const OpCtx& ctx,
                           const std::vector<const TierInfo*>& copies,
                           uint64_t run_lo, uint64_t run_hi, uint64_t offset,
                           uint8_t* out) {
  // SCM cache path: only for blocks whose serving copy is a slower tier.
  if (cache_ != nullptr && copies.front()->speed_rank > 0) {
    return CachedRunRead(inode, ctx, copies, run_lo, run_hi, offset, out);
  }
  return ReadFromCopies(inode, copies, run_lo, run_hi - run_lo,
                        out + (run_lo - offset));
}

Status Mux::CachedRunRead(MuxInode& inode, const OpCtx& ctx,
                          const std::vector<const TierInfo*>& copies,
                          uint64_t run_lo, uint64_t run_hi, uint64_t offset,
                          uint8_t* out) {
  // Pass 1: probe the cache block by block; remember the misses.
  std::vector<uint64_t> missed;
  for (uint64_t pos = run_lo; pos < run_hi;) {
    const uint64_t block = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t chunk = std::min(run_hi - pos, kBlockSize - in_block);
    if (!cache_->TryRead(inode.ino, block, in_block, chunk,
                         out + (pos - offset))) {
      missed.push_back(block);
    }
    pos += chunk;
  }
  if (missed.empty()) {
    return Status::Ok();
  }

  // Pass 2: coalesce adjacent missed blocks into one run-sized tier read
  // (instead of one kBlockSize read per miss), admit every block from that
  // buffer, and copy the requested slices out. Residency is uniform across
  // the run (ReadLocked splits at residency boundaries), so coalescing is
  // pure adjacency.
  metrics_.Add("mux.cache.missed_blocks", missed.size());
  std::vector<uint8_t> buf;
  size_t i = 0;
  while (i < missed.size()) {
    const uint64_t b0 = missed[i];
    size_t j = i + 1;
    while (j < missed.size() && missed[j] == missed[j - 1] + 1) {
      ++j;
    }
    const uint64_t blocks = missed[j - 1] - b0 + 1;
    metrics_.Add("mux.cache.coalesced_reads", 1);
    buf.resize(blocks * kBlockSize);
    MUX_RETURN_IF_ERROR(ReadFromCopies(inode, copies, b0 * kBlockSize,
                                       blocks * kBlockSize, buf.data()));
    for (uint64_t b = b0; b < b0 + blocks; ++b) {
      const uint8_t* block_bytes = buf.data() + (b - b0) * kBlockSize;
      cache_->OnMiss(inode.ino, b, block_bytes);
      const uint64_t lo = std::max(run_lo, b * kBlockSize);
      const uint64_t hi = std::min(run_hi, (b + 1) * kBlockSize);
      std::memcpy(out + (lo - offset), block_bytes + (lo - b * kBlockSize),
                  hi - lo);
    }
    i = j;
  }
  return Status::Ok();
}

Status Mux::DispatchSegments(std::vector<SegmentJob> jobs) const {
  if (jobs.empty()) {
    return Status::Ok();
  }
  bool multi_tier = false;
  for (const SegmentJob& job : jobs) {
    multi_tier |= job.tier != jobs.front().tier;
  }
  if (!options_.parallel_dispatch || executor_ == nullptr || !multi_tier) {
    // Serial dispatch: run in submission order on this thread. Charges go to
    // the caller's cursor/clock exactly as the pre-parallel code did.
    for (const SegmentJob& job : jobs) {
      MUX_RETURN_IF_ERROR(job.fn());
    }
    return Status::Ok();
  }

  // Group jobs into per-tier chains (submission order preserved within a
  // tier: chain latency = sum) and fan the chains out. Every chain starts at
  // the same origin, so across tiers the latencies overlap: the join charges
  // max-of-chains, the split request costs the slowest tier, not the sum.
  const size_t segment_count = jobs.size();
  std::map<TierId, std::vector<std::function<Status()>>> chains;
  for (SegmentJob& job : jobs) {
    chains[job.tier].push_back(std::move(job.fn));
  }
  if (async_ != nullptr) {
    // Completion-based path: submit every chain into its tier's submission
    // ring and join the completions — per-request start times come from the
    // ring's simulated channel model (queue-depth-aware). Submission and
    // completion handling are software work, charged per chain. On the
    // default path the join is a FanIn whose final completion signals a
    // plain OpEvent (the sync API's blocking bridge); only the
    // continuation_ops=false ablation still parks in
    // CompletionGroup::Await.
    ChargeSw("mux.sw.submit_ns",
             options_.costs.submit_ns * static_cast<SimTime>(chains.size()));
    const SimTime origin = clock_->Now();
    AsyncJoined joined;
    if (options_.continuation_ops) {
      OpEvent event;
      auto fan = FanIn::Create(chains.size(),
                               [&joined, &event](const AsyncJoined& j) {
                                 joined = j;
                                 event.Signal();
                               });
      for (auto& [tier, fns] : chains) {
        AsyncIoRequest request;
        request.queue = tier;
        request.origin = origin;
        request.fn = [chain = std::move(fns)]() -> Status {
          for (const auto& fn : chain) {
            MUX_RETURN_IF_ERROR(fn());
          }
          return Status::Ok();
        };
        request.on_complete = fan->Add();
        // A rejected submit still runs the continuation (cancelled, kBusy),
        // so the fan-in below always fires.
        (void)async_->Submit(std::move(request));
      }
      event.Wait();
    } else {
      CompletionGroup group;
      for (auto& [tier, fns] : chains) {
        AsyncIoRequest request;
        request.queue = tier;
        request.origin = origin;
        request.fn = [chain = std::move(fns)]() -> Status {
          for (const auto& fn : chain) {
            MUX_RETURN_IF_ERROR(fn());
          }
          return Status::Ok();
        };
        request.on_complete = group.Add();
        (void)async_->Submit(std::move(request));
      }
      joined = group.Await();
    }
    // Max over the chains, wait + service: concurrent chains overlap, and a
    // failed chain still consumed the time its segments charged before the
    // failure (same doctrine as the executor join below).
    clock_->Advance(joined.max_total_ns);
    ChargeSw("mux.sw.completion_ns", options_.costs.completion_ns *
                                         static_cast<SimTime>(chains.size()));
    metrics_.Add("mux.parallel.fanouts", 1);
    metrics_.Add("mux.parallel.segments", segment_count);
    metrics_.Add("mux.parallel.chain_max_ns", joined.max_total_ns);
    metrics_.Add("mux.parallel.chain_sum_ns", joined.sum_service_ns);
    return joined.status;
  }

  const SimTime origin = clock_->Now();
  std::vector<std::future<IoCompletion>> completions;
  completions.reserve(chains.size());
  for (auto& [tier, fns] : chains) {
    completions.push_back(executor_->Submit(
        tier, origin, [chain = std::move(fns)]() -> Status {
          for (const auto& fn : chain) {
            MUX_RETURN_IF_ERROR(fn());
          }
          return Status::Ok();
        }));
  }
  Status status = Status::Ok();
  SimTime max_ns = 0;
  SimTime sum_ns = 0;
  for (auto& completion : completions) {
    IoCompletion done = completion.get();
    if (status.ok() && !done.status.ok()) {
      status = done.status;
    }
    max_ns = std::max(max_ns, done.elapsed_ns);
    sum_ns += done.elapsed_ns;
  }
  clock_->Advance(max_ns);  // lands in the enclosing per-op cursor
  metrics_.Add("mux.parallel.fanouts", 1);
  metrics_.Add("mux.parallel.segments", segment_count);
  metrics_.Add("mux.parallel.chain_max_ns", max_ns);
  metrics_.Add("mux.parallel.chain_sum_ns", sum_ns);
  return status;
}

// ---- write path -----------------------------------------------------------------

Result<uint64_t> Mux::Write(vfs::FileHandle handle, uint64_t offset,
                            const uint8_t* data, uint64_t length) {
  const SimTime start = clock_->Now();
  OpAdmit();
  ChargeDispatch();
  auto ctx_or = BeginOp(handle, vfs::OpenFlags::kWrite);
  if (!ctx_or.ok()) {
    OpRetire();
    return ctx_or.status();
  }
  OpCtx ctx = std::move(*ctx_or);
  MuxInode& inode = *ctx.file.inode;
  const bool is_sync = (ctx.file.flags & vfs::OpenFlags::kSync) != 0;
  Result<uint64_t> result = uint64_t{0};
  {
    std::lock_guard<OpGate> file_lock(inode.mu);
    // Cursor installed after lock acquisition (see Read): writers serialize
    // on the exclusive lock, so their simulated times must chain, not
    // overlap. The cursor merges before the lock is released.
    ScopedTimeCursor op_cursor(clock_);
    result = WriteLocked(inode, ctx, offset, data, length, is_sync);
  }
  RecordOp("write", "mux.write.latency_ns", result.ok() ? *result : 0, start);
  OpRetire();
  return result;
}

Result<uint64_t> Mux::WriteLocked(MuxInode& inode, const OpCtx& ctx,
                                  uint64_t offset, const uint8_t* data,
                                  uint64_t length, bool is_sync) {
  if (length == 0) {
    return uint64_t{0};
  }
  WritePlan plan;
  MUX_RETURN_IF_ERROR(
      PlanWriteLocked(inode, ctx, offset, data, length, is_sync, &plan));
  if (!plan.jobs.empty()) {
    MUX_RETURN_IF_ERROR(DispatchSegments(std::move(plan.jobs)));
    plan.parallel_attempted = true;
  }
  return ExecuteWriteTail(inode, ctx, offset, data, length, is_sync, plan);
}

Status Mux::PlanWriteLocked(MuxInode& inode, const OpCtx& ctx,
                            uint64_t offset, const uint8_t* data,
                            uint64_t length, bool is_sync, WritePlan* plan) {
  (void)is_sync;
  const uint64_t first_block = offset / kBlockSize;
  const uint64_t last_block = (offset + length - 1) / kBlockSize;

  ChargeSw("mux.sw.blt_ns", options_.costs.blt_lookup_ns);
  const auto runs =
      inode.blt->ResidencyRuns(first_block, last_block - first_block + 1);
  if (runs.size() > 1) {
    ChargeSw("mux.sw.split_ns", options_.costs.split_segment_ns * (runs.size() - 1));
    hot_stats_.split_segments.fetch_add(runs.size() - 1,
                                        std::memory_order_relaxed);
  }

  // One write segment (WriteSegment): a residency-uniform piece plus the
  // tier that should absorb the bytes. Mapped pieces absorb on the fastest
  // CLEAN resident copy (only clean copies hold current bytes, so a
  // partial-block overwrite there is safe); holes get a placement decision
  // in ExecuteWriteTail.
  using WriteSeg = WriteSegment;

  // Placement granularity for new blocks: large appends are placed in
  // chunks so a single huge write can start on the fast tier and spill to
  // slower ones when space runs out.
  constexpr uint64_t kPlacementChunkBlocks = 1024;  // 4 MiB
  auto& segments = plan->segments;
  bool has_hole = false;
  for (const auto& run : runs) {
    if (run.set.Mapped()) {
      TierId target = run.set.primary;
      for (const TierInfo& tier : ctx.tiers()) {
        if (run.set.CleanOn(tier.id)) {
          target = tier.id;
          break;
        }
      }
      segments.push_back(WriteSeg{run.first_block, run.count, target,
                                  run.set});
      continue;
    }
    has_hole = true;
    if (run.count <= kPlacementChunkBlocks) {
      segments.push_back(
          WriteSeg{run.first_block, run.count, kInvalidTier, run.set});
      continue;
    }
    for (uint64_t done = 0; done < run.count; done += kPlacementChunkBlocks) {
      segments.push_back(WriteSeg{
          run.first_block + done,
          std::min(kPlacementChunkBlocks, run.count - done), kInvalidTier,
          run.set});
    }
  }

  // Policies need occupancy; capture it once and keep it current locally as
  // chunks land.
  auto& usages = plan->usages;
  if (has_hole) {
    usages.reserve(ctx.tiers().size());
    for (const TierInfo& tier : ctx.tiers()) {
      TierUsage usage;
      usage.id = tier.id;
      usage.name = tier.name;
      usage.speed_rank = tier.speed_rank;
      usage.kind = tier.profile.kind;
      auto st = tier.fs->StatFs();
      if (st.ok()) {
        usage.capacity_bytes = st->capacity_bytes;
        usage.free_bytes = st->free_bytes;
      }
      usages.push_back(std::move(usage));
    }
    std::sort(usages.begin(), usages.end(),
              [](const TierUsage& a, const TierUsage& b) {
                return a.speed_rank < b.speed_rank;
              });
  }

  // Parallel overwrite fast path: when every block is already mapped (no
  // placement decisions, no occupancy feedback between chunks) and the write
  // spans more than one absorb tier, issue each segment's absorb-tier write
  // through the executor so the per-tier device times overlap. The
  // bookkeeping — ENOSPC fall-down, BLT commit, cache write-through, mirror
  // dirtying — stays in the serial loop below, which consumes the
  // per-segment results.
  auto& parallel_status = plan->parallel_status;
  auto& parallel_open_failed = plan->parallel_open_failed;
  if (!has_hole && options_.parallel_dispatch && executor_ != nullptr &&
      segments.size() > 1) {
    bool multi_tier = false;
    for (const auto& run : segments) {
      multi_tier |= run.target != segments.front().target;
    }
    if (multi_tier) {
      parallel_status.assign(segments.size(), Status::Ok());
      parallel_open_failed.assign(segments.size(), 0);
      auto& jobs = plan->jobs;
      jobs.reserve(segments.size());
      Status prep = Status::Ok();
      for (size_t si = 0; si < segments.size(); ++si) {
        const auto& run = segments[si];
        const uint64_t run_lo = std::max(offset, run.first_block * kBlockSize);
        const uint64_t run_hi = std::min(
            offset + length, (run.first_block + run.count) * kBlockSize);
        auto tier_or = FindTier(ctx.tiers(), run.target);
        if (!tier_or.ok()) {
          prep = tier_or.status();
          break;
        }
        const TierInfo* tier = *tier_or;
        Status* slot = &parallel_status[si];
        char* open_failed = &parallel_open_failed[si];
        jobs.push_back(SegmentJob{
            run.target, [this, &inode, tier, run_lo, run_hi, offset, data, slot,
                       open_failed]() -> Status {
              // Exactly one attempt against the segment's home tier — the
              // same first-candidate attempt the serial loop would make.
              // Failures are reported through the slot (not the chain
              // status) so sibling segments still run, mirroring the serial
              // loop's per-segment fall-down.
              auto shadow = ShadowHandleLocked(inode, *tier, /*create=*/true);
              if (!shadow.ok()) {
                *slot = shadow.status();
                *open_failed = 1;
                return Status::Ok();
              }
              *slot = tier->fs
                          ->Write(*shadow, run_lo, data + (run_lo - offset),
                                  run_hi - run_lo)
                          .status();
              return Status::Ok();
            }});
      }
      if (!prep.ok()) {
        // Prep failed (unknown tier) — discard the fast path and let the
        // serial loop take every attempt, exactly as before.
        jobs.clear();
        parallel_status.clear();
        parallel_open_failed.clear();
      }
    }
  }
  return Status::Ok();
}

Result<uint64_t> Mux::ExecuteWriteTail(MuxInode& inode, const OpCtx& ctx,
                                       uint64_t offset, const uint8_t* data,
                                       uint64_t length, bool is_sync,
                                       WritePlan& plan) {
  const uint64_t first_block = offset / kBlockSize;
  const uint64_t last_block = (offset + length - 1) / kBlockSize;
  auto& segments = plan.segments;
  auto& usages = plan.usages;
  auto& parallel_status = plan.parallel_status;
  auto& parallel_open_failed = plan.parallel_open_failed;
  const bool parallel_attempted = plan.parallel_attempted;

  TierId last_written_tier = kInvalidTier;
  for (size_t si = 0; si < segments.size(); ++si) {
    const auto& run = segments[si];
    const uint64_t run_lo = std::max(offset, run.first_block * kBlockSize);
    const uint64_t run_hi =
        std::min(offset + length, (run.first_block + run.count) * kBlockSize);
    TierId target = run.target;
    if (target == kInvalidTier) {
      PlacementContext pctx;
      pctx.path = inode.path;
      pctx.io_size = run_hi - run_lo;
      pctx.is_sync = is_sync;
      pctx.file_size = inode.attrs.size();
      pctx.block_index = run.first_block;
      pctx.temperature = inode.temperature;
      pctx.tiers = &usages;
      target = ctx.policy() != nullptr ? ctx.policy()->PlaceWrite(pctx)
                                     : kInvalidTier;
      if (target == kInvalidTier && !ctx.tiers().empty()) {
        target = ctx.tiers().front().id;
      }
    }

    // Dispatch, falling down the hierarchy on ENOSPC.
    Status write_status = NoSpaceError("no tier accepted the write");
    TierId actual = kInvalidTier;
    MUX_ASSIGN_OR_RETURN(const TierInfo* first_choice,
                         FindTier(ctx.tiers(), target));
    std::vector<const TierInfo*> candidates;
    if (parallel_attempted) {
      // The home-tier attempt already ran on the executor; adopt its result
      // and fall down the hierarchy under exactly the serial rules: retry
      // other tiers after an open failure or ENOSPC, stop on a hard error.
      write_status = parallel_status[si];
      if (write_status.ok()) {
        actual = target;
      } else if (parallel_open_failed[si] != 0 ||
                 write_status.code() == ErrorCode::kNoSpace) {
        for (const TierInfo& tier : ctx.tiers()) {
          if (tier.id != target) {
            candidates.push_back(&tier);
          }
        }
      }
    } else {
      candidates.push_back(first_choice);
      for (const TierInfo& tier : ctx.tiers()) {
        if (tier.id != target) {
          candidates.push_back(&tier);
        }
      }
    }
    for (const TierInfo* tier : candidates) {
      auto shadow = ShadowHandleLocked(inode, *tier, /*create=*/true);
      if (!shadow.ok()) {
        write_status = shadow.status();
        continue;
      }
      auto written = tier->fs->Write(*shadow, run_lo, data + (run_lo - offset),
                                     run_hi - run_lo);
      if (written.ok()) {
        actual = tier->id;
        write_status = Status::Ok();
        break;
      }
      write_status = written.status();
      if (written.status().code() != ErrorCode::kNoSpace) {
        break;
      }
    }
    MUX_RETURN_IF_ERROR(write_status);

    // Keep the local occupancy view current so later chunks of this call
    // see the space this chunk consumed.
    for (TierUsage& usage : usages) {
      if (usage.id == actual) {
        usage.free_bytes -= std::min<uint64_t>(usage.free_bytes,
                                               run_hi - run_lo);
      }
    }

    // Residency bookkeeping for the absorbed bytes (MOST write path):
    //  * absorbed on the primary — other copies just went stale, DirtyAll;
    //  * absorbed on a clean mirror — it becomes the primary, the old
    //    primary demotes to a dirty mirror (its media still holds the old
    //    bytes), everything else goes dirty (AbsorbWrite); nothing is
    //    punched — the lazy mirror sync reconciles later;
    //  * a fall-down landed on a NON-resident tier — exclusive move exactly
    //    as before: punch the old primary, remap, dirty any mirrors.
    const uint64_t seg_first = run_lo / kBlockSize;
    const uint64_t seg_count =
        (run_hi - 1) / kBlockSize - seg_first + 1;
    uint64_t dirtied = 0;
    if (run.set.Mapped() && actual == run.set.primary) {
      dirtied = inode.blt->DirtyAll(seg_first, seg_count);
    } else if (run.set.Mapped() && run.set.CleanOn(actual)) {
      dirtied = inode.blt->AbsorbWrite(seg_first, seg_count, actual);
    } else {
      if (run.set.Mapped() && run.set.primary != actual) {
        MUX_ASSIGN_OR_RETURN(const TierInfo* old_tier,
                             FindTier(ctx.tiers(), run.set.primary));
        auto old_shadow = ShadowHandleLocked(inode, *old_tier, false);
        if (old_shadow.ok()) {
          (void)old_tier->fs->PunchHole(*old_shadow, seg_first * kBlockSize,
                                        seg_count * kBlockSize);
        }
      }
      inode.blt->SetRange(seg_first, seg_count, actual);
      dirtied = inode.blt->DirtyAll(seg_first, seg_count);
    }
    if (dirtied > 0) {
      metrics_.Add("mux.mirror.dirty_blocks", dirtied);
    }
    last_written_tier = actual;

    // Write-through into the SCM cache.
    if (cache_ != nullptr) {
      for (uint64_t pos = run_lo; pos < run_hi;) {
        const uint64_t block = pos / kBlockSize;
        const uint64_t in_block = pos % kBlockSize;
        const uint64_t chunk = std::min(run_hi - pos, kBlockSize - in_block);
        cache_->OnWrite(inode.ino, block, in_block, chunk,
                        data + (pos - offset));
        pos += chunk;
      }
    }
  }

  // OCC bookkeeping: every committed write bumps the version and, during a
  // migration pass, records its dirty blocks (§2.4).
  inode.occ.NoteWrite(first_block, last_block - first_block + 1);
  ChargeSw("mux.sw.occ_ns", options_.costs.occ_check_ns);

  // Metadata affinity (§2.3): the FS that allocated the last block of an
  // append owns the size; the FS that overwrote the last block owns mtime.
  const uint64_t new_size = std::max(inode.attrs.size(), offset + length);
  const SimTime now = clock_->Now();
  if (new_size > inode.attrs.size()) {
    inode.attrs.UpdateSize(new_size, last_written_tier);
  }
  inode.attrs.UpdateMtime(now, last_written_tier);
  ChargeSw("mux.sw.affinity_ns", options_.costs.affinity_update_ns);
  Touch(inode);
  hot_stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return length;
}

// ---- op state machine: non-blocking read/write -----------------------------------
//
// ReadAsync/WriteAsync run the same plan/execute/finish pieces as the sync
// wrappers, but no thread ever parks: the gate is acquired via
// TryLock*OrQueue (grant hops onto the resume pool), device fan-out joins
// through FanIn, and the commit phase runs on a resume worker when the last
// completion arrives. Per-op simulated time is carried in {start_ns,
// local_ns}; each phase anchors a ScopedTimeCursor at start+local and
// accumulates its Release()'d time, so an op resumed on a thread that owns
// a foreign cursor never contaminates it.

struct Mux::ReadOp {
  vfs::FileHandle handle = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint8_t* out = nullptr;
  std::function<void(Result<uint64_t>)> done;
  OpCtx ctx;
  SimTime start_ns = 0;
  SimTime local_ns = 0;  // only the phase currently running touches this
  size_t chains = 0;
  ReadPlan plan;
};

struct Mux::WriteOp {
  vfs::FileHandle handle = 0;
  uint64_t offset = 0;
  const uint8_t* data = nullptr;
  uint64_t length = 0;
  bool is_sync = false;
  std::function<void(Result<uint64_t>)> done;
  OpCtx ctx;
  SimTime start_ns = 0;
  SimTime local_ns = 0;
  size_t chains = 0;
  WritePlan plan;
  // Serial path: filled by the ring request's fn, read by the commit phase
  // (the completion delivery orders the two).
  Result<uint64_t> serial_result = uint64_t{0};
};

void Mux::ReadAsync(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                    uint8_t* out,
                    std::function<void(Result<uint64_t>)> done) {
  if (!ContinuationPathEnabled()) {
    // Ablation / degraded mode: the state machine needs the async core and
    // a resume pool; without them the call is sync-inline.
    auto result = Read(handle, offset, length, out);
    if (done) {
      done(std::move(result));
    }
    return;
  }
  auto op = std::make_shared<ReadOp>();
  op->handle = handle;
  op->offset = offset;
  op->length = length;
  op->out = out;
  op->done = std::move(done);
  op->start_ns = clock_->Now();
  OpAdmit();
  {
    ScopedTimeCursor cursor(clock_, op->start_ns);
    ChargeDispatch();
    auto ctx_or = BeginOp(handle, vfs::OpenFlags::kRead);
    op->local_ns += cursor.Release();
    if (!ctx_or.ok()) {
      FinishReadOp(std::move(op), ctx_or.status());
      return;
    }
    op->ctx = std::move(*ctx_or);
  }
  MuxInode& inode = *op->ctx.file.inode;
  // Shared gate, queued acquisition: the grant runs on the releasing thread
  // and only hops the plan phase onto the resume pool.
  if (inode.mu.TryLockSharedOrQueue([this, op] {
        async_->Resume([this, op] { ReadOpLocked(op); });
      })) {
    ReadOpLocked(std::move(op));
  }
}

void Mux::ReadOpLocked(std::shared_ptr<ReadOp> op) {
  MuxInode& inode = *op->ctx.file.inode;
  ScopedTimeCursor cursor(clock_, op->start_ns + op->local_ns);
  auto plan_or =
      PlanReadLocked(inode, op->ctx, op->offset, op->length, op->out);
  if (!plan_or.ok() || plan_or->n == 0 || plan_or->jobs.empty()) {
    // No device work: past-EOF, zero-length, or a hole-only read already
    // served by the plan's memsets. Finish inline under the gate.
    Result<uint64_t> result = uint64_t{0};
    if (!plan_or.ok()) {
      result = plan_or.status();
    } else if (plan_or->n > 0) {
      FinishReadLocked(inode, plan_or->last_tier);
      result = plan_or->n;
    }
    op->local_ns += cursor.Release();
    inode.mu.unlock_shared();
    FinishReadOp(std::move(op), std::move(result));
    return;
  }
  op->plan = std::move(*plan_or);
  std::map<TierId, std::vector<std::function<Status()>>> chains;
  for (SegmentJob& job : op->plan.jobs) {
    chains[job.tier].push_back(std::move(job.fn));
  }
  ChargeSw("mux.sw.submit_ns",
           options_.costs.submit_ns * static_cast<SimTime>(chains.size()));
  const SimTime origin = clock_->Now();
  op->chains = chains.size();
  op->local_ns += cursor.Release();
  auto fan = FanIn::Create(op->chains, [this, op](const AsyncJoined& joined) {
    ReadOpCommit(op, joined);
  });
  for (auto& [tier, fns] : chains) {
    AsyncIoRequest request;
    request.queue = tier;
    request.origin = origin;
    request.fn = [chain = std::move(fns)]() -> Status {
      for (const auto& fn : chain) {
        MUX_RETURN_IF_ERROR(fn());
      }
      return Status::Ok();
    };
    request.on_complete = fan->Add();
    // A rejected submit still runs the continuation (cancelled, kBusy), so
    // the fan-in always fires and the op always resumes.
    (void)async_->Submit(std::move(request));
  }
}

void Mux::ReadOpCommit(std::shared_ptr<ReadOp> op, const AsyncJoined& joined) {
  MuxInode& inode = *op->ctx.file.inode;
  {
    ScopedTimeCursor cursor(clock_, op->start_ns + op->local_ns);
    clock_->Advance(joined.max_total_ns);
    ChargeSw("mux.sw.completion_ns",
             options_.costs.completion_ns * static_cast<SimTime>(op->chains));
    if (op->chains > 1) {
      metrics_.Add("mux.parallel.fanouts", 1);
      metrics_.Add("mux.parallel.segments", op->plan.jobs.size());
      metrics_.Add("mux.parallel.chain_max_ns", joined.max_total_ns);
      metrics_.Add("mux.parallel.chain_sum_ns", joined.sum_service_ns);
    }
    if (joined.status.ok()) {
      FinishReadLocked(inode, op->plan.last_tier);
    }
    op->local_ns += cursor.Release();
  }
  inode.mu.unlock_shared();
  Result<uint64_t> result = joined.status.ok()
                                ? Result<uint64_t>(op->plan.n)
                                : Result<uint64_t>(joined.status);
  FinishReadOp(std::move(op), std::move(result));
}

void Mux::FinishReadOp(std::shared_ptr<ReadOp> op, Result<uint64_t> result) {
  clock_->AdvanceTo(op->start_ns + op->local_ns);
  RecordOpElapsed("read", "mux.read.latency_ns", result.ok() ? *result : 0,
                  op->start_ns, op->local_ns);
  OpRetire();
  if (op->done) {
    op->done(std::move(result));
  }
}

void Mux::WriteAsync(vfs::FileHandle handle, uint64_t offset,
                     const uint8_t* data, uint64_t length,
                     std::function<void(Result<uint64_t>)> done) {
  if (!ContinuationPathEnabled()) {
    auto result = Write(handle, offset, data, length);
    if (done) {
      done(std::move(result));
    }
    return;
  }
  auto op = std::make_shared<WriteOp>();
  op->handle = handle;
  op->offset = offset;
  op->data = data;
  op->length = length;
  op->done = std::move(done);
  op->start_ns = clock_->Now();
  OpAdmit();
  {
    ScopedTimeCursor cursor(clock_, op->start_ns);
    ChargeDispatch();
    auto ctx_or = BeginOp(handle, vfs::OpenFlags::kWrite);
    op->local_ns += cursor.Release();
    if (!ctx_or.ok()) {
      FinishWriteOp(std::move(op), ctx_or.status());
      return;
    }
    op->ctx = std::move(*ctx_or);
  }
  op->is_sync = (op->ctx.file.flags & vfs::OpenFlags::kSync) != 0;
  MuxInode& inode = *op->ctx.file.inode;
  if (inode.mu.TryLockOrQueue([this, op] {
        async_->Resume([this, op] { WriteOpLocked(op); });
      })) {
    WriteOpLocked(std::move(op));
  }
}

void Mux::WriteOpLocked(std::shared_ptr<WriteOp> op) {
  MuxInode& inode = *op->ctx.file.inode;
  ScopedTimeCursor cursor(clock_, op->start_ns + op->local_ns);
  if (op->length == 0) {
    op->local_ns += cursor.Release();
    inode.mu.unlock();
    FinishWriteOp(std::move(op), uint64_t{0});
    return;
  }
  const Status planned = PlanWriteLocked(inode, op->ctx, op->offset, op->data,
                                         op->length, op->is_sync, &op->plan);
  if (!planned.ok()) {
    op->local_ns += cursor.Release();
    inode.mu.unlock();
    FinishWriteOp(std::move(op), planned);
    return;
  }
  if (!op->plan.jobs.empty()) {
    // Parallel overwrite fast path: the home-tier attempts fan out through
    // the rings; the commit phase adopts their per-slot results.
    std::map<TierId, std::vector<std::function<Status()>>> chains;
    for (SegmentJob& job : op->plan.jobs) {
      chains[job.tier].push_back(std::move(job.fn));
    }
    ChargeSw("mux.sw.submit_ns",
             options_.costs.submit_ns * static_cast<SimTime>(chains.size()));
    const SimTime origin = clock_->Now();
    op->chains = chains.size();
    op->local_ns += cursor.Release();
    auto fan =
        FanIn::Create(op->chains, [this, op](const AsyncJoined& joined) {
          WriteOpCommit(op, joined);
        });
    for (auto& [tier, fns] : chains) {
      AsyncIoRequest request;
      request.queue = tier;
      request.is_write = true;
      request.origin = origin;
      request.fn = [chain = std::move(fns)]() -> Status {
        for (const auto& fn : chain) {
          MUX_RETURN_IF_ERROR(fn());
        }
        return Status::Ok();
      };
      request.on_complete = fan->Add();
      (void)async_->Submit(std::move(request));
    }
    return;
  }
  // Serial path: one ring request runs the whole commit loop (placement,
  // fall-down, bookkeeping) on the first absorb tier's queue; the
  // completion resumes the finish phase. The op still holds the exclusive
  // gate throughout, so running the loop on a server thread is safe.
  TierId queue = kInvalidTier;
  for (const auto& seg : op->plan.segments) {
    if (seg.target != kInvalidTier) {
      queue = seg.target;
      break;
    }
  }
  if (queue == kInvalidTier && !op->ctx.tiers().empty()) {
    queue = op->ctx.tiers().front().id;
  }
  ChargeSw("mux.sw.submit_ns", options_.costs.submit_ns);
  const SimTime origin = clock_->Now();
  op->local_ns += cursor.Release();
  AsyncIoRequest request;
  request.queue = queue;
  request.is_write = true;
  request.bytes = op->length;
  request.origin = origin;
  request.fn = [this, op]() -> Status {
    op->serial_result =
        ExecuteWriteTail(*op->ctx.file.inode, op->ctx, op->offset, op->data,
                         op->length, op->is_sync, op->plan);
    return op->serial_result.ok() ? Status::Ok() : op->serial_result.status();
  };
  request.on_complete = [this, op](const AsyncCompletion& completion) {
    WriteOpSerialCommit(op, completion);
  };
  (void)async_->Submit(std::move(request));
}

void Mux::WriteOpCommit(std::shared_ptr<WriteOp> op,
                        const AsyncJoined& joined) {
  MuxInode& inode = *op->ctx.file.inode;
  Result<uint64_t> result = uint64_t{0};
  {
    ScopedTimeCursor cursor(clock_, op->start_ns + op->local_ns);
    clock_->Advance(joined.max_total_ns);
    ChargeSw("mux.sw.completion_ns",
             options_.costs.completion_ns * static_cast<SimTime>(op->chains));
    metrics_.Add("mux.parallel.fanouts", 1);
    metrics_.Add("mux.parallel.segments", op->plan.jobs.size());
    metrics_.Add("mux.parallel.chain_max_ns", joined.max_total_ns);
    metrics_.Add("mux.parallel.chain_sum_ns", joined.sum_service_ns);
    if (joined.status.ok()) {
      op->plan.parallel_attempted = true;
      result = ExecuteWriteTail(inode, op->ctx, op->offset, op->data,
                                op->length, op->is_sync, op->plan);
    } else {
      result = joined.status;
    }
    op->local_ns += cursor.Release();
  }
  inode.mu.unlock();
  FinishWriteOp(std::move(op), std::move(result));
}

void Mux::WriteOpSerialCommit(std::shared_ptr<WriteOp> op,
                              const AsyncCompletion& completion) {
  MuxInode& inode = *op->ctx.file.inode;
  {
    ScopedTimeCursor cursor(clock_, op->start_ns + op->local_ns);
    clock_->Advance(completion.total_ns());
    ChargeSw("mux.sw.completion_ns", options_.costs.completion_ns);
    op->local_ns += cursor.Release();
  }
  inode.mu.unlock();
  // A cancelled/rejected submission never ran the fn; surface the
  // cancellation status instead of the untouched default result.
  Result<uint64_t> result = completion.cancelled
                                ? Result<uint64_t>(completion.status)
                                : std::move(op->serial_result);
  FinishWriteOp(std::move(op), std::move(result));
}

void Mux::FinishWriteOp(std::shared_ptr<WriteOp> op, Result<uint64_t> result) {
  clock_->AdvanceTo(op->start_ns + op->local_ns);
  RecordOpElapsed("write", "mux.write.latency_ns", result.ok() ? *result : 0,
                  op->start_ns, op->local_ns);
  OpRetire();
  if (op->done) {
    op->done(std::move(result));
  }
}

// ---- truncate / fsync / fallocate / punch ------------------------------------------

Status Mux::TruncateLocked(MuxInode& inode, uint64_t new_size,
                           const std::vector<TierInfo>& tiers) {
  const uint64_t old_size = inode.attrs.size();
  // Every tier that holds part of the file truncates its shadow; sparse
  // offsets keep this a single call per tier.
  for (const TierId tier_id : inode.touched_tiers) {
    MUX_ASSIGN_OR_RETURN(const TierInfo* tier, FindTier(tiers, tier_id));
    auto shadow = ShadowHandleLocked(inode, *tier, false);
    if (!shadow.ok()) {
      continue;
    }
    MUX_RETURN_IF_ERROR(tier->fs->Truncate(*shadow, new_size));
  }
  const uint64_t first_dead = (new_size + kBlockSize - 1) / kBlockSize;
  if (cache_ != nullptr && new_size < inode.attrs.size()) {
    // Only blocks at/after the new EOF go: cached copies of the surviving
    // prefix stay hot across a shrink. The floor (not first_dead) matters
    // when new_size is unaligned — the partial tail block's cached bytes
    // past EOF would otherwise resurface stale if the file regrows.
    cache_->InvalidateRange(inode.ino, new_size / kBlockSize, UINT64_MAX);
  }
  // Clears primary and mirror residency alike; the shadow truncates above
  // already covered every mirror tier (touched_tiers includes them).
  inode.blt->TruncateFrom(first_dead);
  TierId owner = new_size == 0
                     ? inode.attrs.Owner(Attr::kSize)
                     : inode.blt->Lookup((new_size - 1) / kBlockSize);
  if (owner == kInvalidTier) {
    owner = inode.attrs.Owner(Attr::kSize);
  }
  inode.attrs.UpdateSize(new_size, owner);
  inode.attrs.UpdateMtime(clock_->Now(), owner);
  ChargeSw("mux.sw.affinity_ns", options_.costs.affinity_update_ns);

  // OCC: every block the truncate changed is dirty — the whole range between
  // the old and new sizes, not just the block at the new EOF. A migration
  // pass in flight would otherwise validate clean for blocks past the new
  // size and CommitRuns would re-insert mappings beyond it (exactly the
  // size_inconsistencies Scrub() flags).
  const uint64_t hi = std::max(old_size, new_size);
  const uint64_t last_affected = hi == 0 ? 0 : (hi - 1) / kBlockSize;
  const uint64_t first_affected =
      std::min(std::min(old_size, new_size) / kBlockSize, last_affected);
  inode.occ.NoteWrite(first_affected, last_affected - first_affected + 1);
  return Status::Ok();
}

Status Mux::Truncate(vfs::FileHandle handle, uint64_t new_size) {
  ChargeDispatch();
  MUX_ASSIGN_OR_RETURN(OpCtx ctx, BeginOp(handle, vfs::OpenFlags::kWrite));
  MuxInode& inode = *ctx.file.inode;
  std::lock_guard<OpGate> file_lock(inode.mu);
  return TruncateLocked(inode, new_size, ctx.tiers());
}

Status Mux::Fsync(vfs::FileHandle handle, bool data_only) {
  ChargeDispatch();
  MUX_ASSIGN_OR_RETURN(OpCtx ctx, BeginOp(handle, 0));
  MuxInode& inode = *ctx.file.inode;
  std::lock_guard<OpGate> file_lock(inode.mu);
  // Fan out to every file system responsible for part of the file and
  // synchronize on all completions (§4 "Crash Consistency").
  for (const TierId tier_id : inode.touched_tiers) {
    MUX_ASSIGN_OR_RETURN(const TierInfo* tier, FindTier(ctx.tiers(), tier_id));
    auto shadow = ShadowHandleLocked(inode, *tier, false);
    if (!shadow.ok()) {
      continue;
    }
    MUX_RETURN_IF_ERROR(tier->fs->Fsync(*shadow, data_only));
  }
  return Status::Ok();
}

Status Mux::Fallocate(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                      bool keep_size) {
  ChargeDispatch();
  MUX_ASSIGN_OR_RETURN(OpCtx ctx, BeginOp(handle, vfs::OpenFlags::kWrite));
  MuxInode& inode = *ctx.file.inode;
  if (length == 0) {
    return InvalidArgumentError("zero-length fallocate");
  }
  std::lock_guard<OpGate> file_lock(inode.mu);
  // Preallocate on the fastest tier with room (preallocation exists to make
  // later writes cheap, so it follows placement of hot data).
  Status status = NoSpaceError("no tier accepted the fallocate");
  for (const TierInfo& tier : ctx.tiers()) {
    auto shadow = ShadowHandleLocked(inode, tier, /*create=*/true);
    if (!shadow.ok()) {
      status = shadow.status();
      continue;
    }
    status = tier.fs->Fallocate(*shadow, offset, length, keep_size);
    if (status.ok()) {
      const uint64_t first = offset / kBlockSize;
      const uint64_t last = (offset + length - 1) / kBlockSize;
      // Only holes become preallocated blocks. Blocks that already hold
      // data keep their mapping — remapping them here would make them read
      // the zero-filled preallocation instead of the real bytes — and where
      // the preallocation overlaps live data homed on another tier, it is
      // punched back out so it never consumes space.
      for (const auto& run : inode.blt->Runs(first, last - first + 1)) {
        if (run.tier == kInvalidTier) {
          inode.blt->SetRange(run.first_block, run.count, tier.id);
          inode.occ.NoteWrite(run.first_block, run.count);
          continue;
        }
        if (run.tier == tier.id) {
          continue;  // live data already on the preallocation tier
        }
        // Punch block-by-block groups, skipping blocks whose mirror copy
        // lives on this tier (the mirror bytes share the shadow).
        uint64_t piece = run.first_block;
        auto flush = [&](uint64_t end) {
          if (piece < end) {
            (void)tier.fs->PunchHole(*shadow, piece * kBlockSize,
                                     (end - piece) * kBlockSize);
          }
        };
        for (uint64_t b = run.first_block; b < run.first_block + run.count;
             ++b) {
          if (inode.blt->LookupSet(b).ReplicaOn(tier.id)) {
            flush(b);
            piece = b + 1;
          }
        }
        flush(run.first_block + run.count);
      }
      if (!keep_size && offset + length > inode.attrs.size()) {
        inode.attrs.UpdateSize(offset + length, tier.id);
      }
      return Status::Ok();
    }
    if (status.code() != ErrorCode::kNoSpace) {
      return status;
    }
  }
  return status;
}

Status Mux::PunchHole(vfs::FileHandle handle, uint64_t offset,
                      uint64_t length) {
  ChargeDispatch();
  MUX_ASSIGN_OR_RETURN(OpCtx ctx, BeginOp(handle, vfs::OpenFlags::kWrite));
  MuxInode& inode = *ctx.file.inode;
  if (offset % kBlockSize != 0 || length % kBlockSize != 0 || length == 0) {
    return InvalidArgumentError("hole punch must be block aligned");
  }
  std::lock_guard<OpGate> file_lock(inode.mu);
  const uint64_t first = offset / kBlockSize;
  const uint64_t count = length / kBlockSize;
  for (const auto& run : inode.blt->Runs(first, count)) {
    if (run.tier == kInvalidTier) {
      continue;
    }
    MUX_ASSIGN_OR_RETURN(const TierInfo* tier, FindTier(ctx.tiers(), run.tier));
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle shadow,
                         ShadowHandleLocked(inode, *tier, false));
    MUX_RETURN_IF_ERROR(tier->fs->PunchHole(shadow,
                                            run.first_block * kBlockSize,
                                            run.count * kBlockSize));
    if (cache_ != nullptr && run.count > 0) {
      cache_->InvalidateRange(inode.ino, run.first_block,
                              run.first_block + run.count - 1);
    }
  }
  for (const auto& mrun : inode.blt->MirrorRuns(first, count)) {
    for (uint32_t bits = mrun.extra; bits != 0; bits &= bits - 1) {
      const TierId t = static_cast<TierId>(std::countr_zero(bits));
      auto tier = FindTier(ctx.tiers(), t);
      if (!tier.ok()) {
        continue;
      }
      auto shadow = ShadowHandleLocked(inode, **tier, false);
      if (shadow.ok()) {
        (void)(*tier)->fs->PunchHole(*shadow, mrun.first_block * kBlockSize,
                                     mrun.count * kBlockSize);
      }
    }
  }
  // ClearRange drops mirror residency along with the primary mapping.
  inode.blt->ClearRange(first, count);
  inode.occ.NoteWrite(first, count);
  return Status::Ok();
}

// ---- migration (OCC Synchronizer + Policy Runner) -----------------------------------

std::vector<BlockLookupTable::Run> Mux::PendingRunsLocked(
    const MuxInode& inode, uint64_t first_block, uint64_t count, TierId to,
    TierId only_from) const {
  std::vector<BlockLookupTable::Run> pending;
  for (const auto& run : inode.blt->Runs(first_block, count)) {
    if (run.tier == kInvalidTier || run.tier == to) {
      continue;
    }
    if (only_from != kInvalidTier && run.tier != only_from) {
      continue;
    }
    pending.push_back(run);
  }
  return pending;
}

Status Mux::CopyRuns(MuxInode& inode, const std::vector<TierInfo>& tiers,
                     const std::vector<BlockLookupTable::Run>& runs,
                     TierId to) {
  MUX_ASSIGN_OR_RETURN(const TierInfo* dst, FindTier(tiers, to));
  if (options_.pipelined_migration_copy && executor_ != nullptr) {
    return CopyRunsPipelined(inode, tiers, runs, *dst);
  }
  std::vector<uint8_t> buf;
  for (const auto& run : runs) {
    MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
    // Shadow handles were opened by the caller while the lock was held.
    // CopyRuns itself runs with NO file lock (writers keep flowing), and
    // concurrent shared-lock readers insert into the map, so the lookup must
    // take shadow_mu; the handles themselves stay valid once copied out.
    vfs::FileHandle src_handle;
    vfs::FileHandle dst_handle;
    {
      std::lock_guard<std::mutex> shadow_lock(inode.shadow_mu);
      auto src_it = inode.shadows.find(src->id);
      auto dst_it = inode.shadows.find(dst->id);
      if (src_it == inode.shadows.end() || dst_it == inode.shadows.end()) {
        return InternalError("migration shadows not open");
      }
      src_handle = src_it->second;
      dst_handle = dst_it->second;
    }
    // Stream in 1 MiB slices.
    constexpr uint64_t kSlice = 256;  // blocks
    for (uint64_t done = 0; done < run.count; done += kSlice) {
      const uint64_t blocks = std::min(kSlice, run.count - done);
      const uint64_t off = (run.first_block + done) * kBlockSize;
      buf.resize(blocks * kBlockSize);
      MUX_ASSIGN_OR_RETURN(
          uint64_t got, src->fs->Read(src_handle, off, buf.size(),
                                      buf.data()));
      if (got < buf.size()) {
        std::memset(buf.data() + got, 0, buf.size() - got);
      }
      MUX_RETURN_IF_ERROR(
          dst->fs->Write(dst_handle, off, buf.data(), buf.size())
              .status());
    }
  }
  return Status::Ok();
}

Status Mux::CopyRunsPipelined(MuxInode& inode,
                              const std::vector<TierInfo>& tiers,
                              const std::vector<BlockLookupTable::Run>& runs,
                              const TierInfo& dst) {
  constexpr uint64_t kSlice = 256;  // blocks (1 MiB)
  const SimTime origin = clock_->Now();
  SimTime read_chain = 0;   // ns past origin when the last read finished
  SimTime write_chain = 0;  // ns past origin when the last write finished

  struct Slice {
    uint64_t off = 0;
    std::vector<uint8_t> buf;
  };
  std::array<Slice, 2> slices;

  vfs::FileHandle dst_handle;
  {
    std::lock_guard<std::mutex> shadow_lock(inode.shadow_mu);
    auto dst_it = inode.shadows.find(dst.id);
    if (dst_it == inode.shadows.end()) {
      return InternalError("migration shadows not open");
    }
    dst_handle = dst_it->second;
  }

  uint64_t overlapped = 0;
  for (const auto& run : runs) {
    MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
    vfs::FileHandle src_handle;
    {
      std::lock_guard<std::mutex> shadow_lock(inode.shadow_mu);
      auto src_it = inode.shadows.find(src->id);
      if (src_it == inode.shadows.end()) {
        return InternalError("migration shadows not open");
      }
      src_handle = src_it->second;
    }

    // Source reads chain after one another on the source pool; slice N+1's
    // read is submitted while slice N's write is in flight on the
    // destination pool. PendingRuns never yields run.tier == dst.id, so the
    // two chains really are on different devices.
    auto read_slice = [&](int which, uint64_t done) {
      Slice& s = slices[which];
      const uint64_t blocks = std::min(kSlice, run.count - done);
      s.off = (run.first_block + done) * kBlockSize;
      s.buf.resize(blocks * kBlockSize);
      return executor_->Submit(
          src->id, origin + read_chain, [src, src_handle, &s]() -> Status {
            MUX_ASSIGN_OR_RETURN(
                uint64_t got,
                src->fs->Read(src_handle, s.off, s.buf.size(), s.buf.data()));
            if (got < s.buf.size()) {
              std::memset(s.buf.data() + got, 0, s.buf.size() - got);
            }
            return Status::Ok();
          });
    };

    const uint64_t total_slices = (run.count + kSlice - 1) / kSlice;
    IoCompletion primed = read_slice(0, 0).get();
    MUX_RETURN_IF_ERROR(primed.status);
    read_chain += primed.elapsed_ns;
    SimTime data_ready = read_chain;

    int cur = 0;
    for (uint64_t i = 0; i < total_slices; ++i) {
      Slice& s = slices[cur];
      // A write needs its buffer filled AND the previous write retired.
      const SimTime write_start = std::max(data_ready, write_chain);
      auto write_future = executor_->Submit(
          dst.id, origin + write_start, [&dst, dst_handle, &s]() -> Status {
            return dst.fs->Write(dst_handle, s.off, s.buf.data(),
                                 s.buf.size())
                .status();
          });
      std::future<IoCompletion> next_read;
      if (i + 1 < total_slices) {
        next_read = read_slice(1 - cur, (i + 1) * kSlice);
        ++overlapped;
      }
      // Join both before acting on either status so no future outlives the
      // buffers on an error return.
      Status read_status;
      if (next_read.valid()) {
        IoCompletion rc = next_read.get();
        read_status = rc.status;
        read_chain += rc.elapsed_ns;
        data_ready = read_chain;
      }
      IoCompletion wc = write_future.get();
      write_chain = write_start + wc.elapsed_ns;
      MUX_RETURN_IF_ERROR(wc.status);
      MUX_RETURN_IF_ERROR(read_status);
      cur = 1 - cur;
    }
  }

  // The copy charges the pipeline's end, not the serial read+write sum —
  // same max-of-chains model as split-I/O dispatch.
  clock_->Advance(std::max(read_chain, write_chain));
  metrics_.Add("mux.migrate.pipeline.copies", 1);
  metrics_.Add("mux.migrate.pipeline.overlapped_slices", overlapped);
  metrics_.Add("mux.migrate.pipeline.read_chain_ns", read_chain);
  metrics_.Add("mux.migrate.pipeline.write_chain_ns", write_chain);
  return Status::Ok();
}

Status Mux::CommitRuns(MuxInode& inode, const std::vector<TierInfo>& tiers,
                       const std::vector<BlockLookupTable::Run>& runs,
                       TierId to, const std::vector<uint64_t>& skip_blocks) {
  uint64_t committed = 0;
  for (const auto& run : runs) {
    // Split the run at skipped (conflicted) blocks; commit the clean pieces.
    uint64_t piece_start = run.first_block;
    const uint64_t run_end = run.first_block + run.count;
    auto flush_piece = [&](uint64_t start, uint64_t end) -> Status {
      if (start >= end) {
        return Status::Ok();
      }
      // SetRange dissolves a mirror copy on `to` into the primary and keeps
      // mirrors on other tiers clean — the bytes were copied verbatim.
      inode.blt->SetRange(start, end - start, to);
      committed += end - start;
      MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
      vfs::FileHandle src_handle;
      bool have_src = false;
      {
        std::lock_guard<std::mutex> shadow_lock(inode.shadow_mu);
        auto src_it = inode.shadows.find(src->id);
        if (src_it != inode.shadows.end()) {
          src_handle = src_it->second;
          have_src = true;
        }
      }
      if (have_src) {
        (void)src->fs->PunchHole(src_handle, start * kBlockSize,
                                 (end - start) * kBlockSize);
      }
      return Status::Ok();
    };
    // Merged walk over the sorted conflict list: position once with
    // lower_bound, then advance both cursors in lockstep —
    // O(run + conflicts) instead of a log-factor probe per block.
    auto skip = std::lower_bound(skip_blocks.begin(), skip_blocks.end(),
                                 run.first_block);
    for (; skip != skip_blocks.end() && *skip < run_end; ++skip) {
      if (*skip < piece_start) {
        continue;  // duplicate conflict entry
      }
      MUX_RETURN_IF_ERROR(flush_piece(piece_start, *skip));
      piece_start = *skip + 1;
    }
    MUX_RETURN_IF_ERROR(flush_piece(piece_start, run_end));
  }
  hot_stats_.migrated_blocks.fetch_add(committed, std::memory_order_relaxed);
  return Status::Ok();
}

Status Mux::MigrateRangeInternal(const std::shared_ptr<MuxInode>& inode,
                                 uint64_t first_block, uint64_t count,
                                 TierId to, TierId only_from) {
  // Pin the tier snapshot for the whole pass — no ns_mu_, no vector copy.
  const auto tier_set = SnapshotTierSet();
  const std::vector<TierInfo>& tiers = tier_set->tiers;
  MUX_RETURN_IF_ERROR(FindTier(tiers, to).status());

  // One migration pass at a time per inode: OccState has a single
  // migrating/dirty set, so two overlapping passes would corrupt each
  // other's conflict tracking. Writers are NOT blocked by this — they take
  // inode->mu, not migrate_mu.
  std::lock_guard<std::mutex> migrate_lock(inode->migrate_mu);

  int attempt = 0;
  std::vector<BlockLookupTable::Run> pending;
  uint64_t v1 = 0;
  {
    std::lock_guard<OpGate> file_lock(inode->mu);
    pending = PendingRunsLocked(*inode, first_block, count, to, only_from);
    if (pending.empty()) {
      return Status::Ok();
    }
    // Open every shadow the copy phase will need while the lock is held —
    // before BeginPass, so an open failure cannot leave a pass armed.
    MUX_ASSIGN_OR_RETURN(const TierInfo* dst, FindTier(tiers, to));
    MUX_RETURN_IF_ERROR(
        ShadowHandleLocked(*inode, *dst, /*create=*/true).status());
    for (const auto& run : pending) {
      MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
      MUX_RETURN_IF_ERROR(
          ShadowHandleLocked(*inode, *src, /*create=*/false).status());
    }
    v1 = inode->occ.BeginPass();
  }

  hot_stats_.migration_passes.fetch_add(1, std::memory_order_relaxed);

  while (true) {
    // Copy phase: user writes keep flowing (§2.4 — "minimizing the impact
    // of conflict checking on the critical path").
    Status copy_status = CopyRuns(*inode, tiers, pending, to);
    if (copy_status.ok()) {
      // The copies must be durable on the destination before the commit
      // publishes them and the source holes are punched — otherwise a crash
      // after commit could lose the only current version.
      MUX_ASSIGN_OR_RETURN(const TierInfo* dst, FindTier(tiers, to));
      vfs::FileHandle dst_handle;
      bool have_dst = false;
      {
        std::lock_guard<std::mutex> shadow_lock(inode->shadow_mu);
        auto it = inode->shadows.find(to);
        if (it != inode->shadows.end()) {
          dst_handle = it->second;
          have_dst = true;
        }
      }
      if (have_dst) {
        copy_status = dst->fs->Fsync(dst_handle, /*data_only=*/true);
      }
    }
    if (!copy_status.ok()) {
      std::lock_guard<OpGate> file_lock(inode->mu);
      inode->occ.AbortPass();
      // Transient tier trouble — the destination filling up or a flaky
      // device — is retried with the same capped attempt budget as OCC
      // conflicts. The BLT has not been touched yet, so aborting here
      // leaves Mux's metadata exactly as it was (Scrub stays clean).
      const ErrorCode code = copy_status.code();
      const bool transient =
          code == ErrorCode::kNoSpace || code == ErrorCode::kIoError;
      if (!transient || ++attempt > OccState::kMaxRetries) {
        return copy_status;
      }
      // Re-snapshot the work: concurrent writes may have moved blocks while
      // the failed copy ran. Shadows are (re)opened before the next pass is
      // armed so a failure cannot leak the migrating flag.
      pending = PendingRunsLocked(*inode, first_block, count, to, only_from);
      if (pending.empty()) {
        return Status::Ok();
      }
      for (const auto& run : pending) {
        auto src = FindTier(tiers, run.tier);
        Status open = src.ok()
                          ? ShadowHandleLocked(*inode, **src, /*create=*/false)
                                .status()
                          : src.status();
        MUX_RETURN_IF_ERROR(open);
      }
      v1 = inode->occ.BeginPass();
      continue;
    }

    // Validate-and-commit phase (short critical section).
    std::unique_lock<OpGate> file_lock(inode->mu);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      occ_stats_.passes++;
    }
    auto result = inode->occ.ValidateAndEnd(v1, first_block, count);
    if (result.clean) {
      MUX_RETURN_IF_ERROR(CommitRuns(*inode, tiers, pending, to, {}));
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      occ_stats_.clean_commits++;
      return Status::Ok();
    }

    // Conflicts: commit the untouched blocks, retry the dirty ones.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      occ_stats_.conflicts++;
      occ_stats_.retried_blocks += result.conflicted.size();
    }
    std::sort(result.conflicted.begin(), result.conflicted.end());
    MUX_RETURN_IF_ERROR(
        CommitRuns(*inode, tiers, pending, to, result.conflicted));

    // Rebuild the pending set from the conflicted blocks' current homes.
    pending.clear();
    for (uint64_t block : result.conflicted) {
      auto runs = PendingRunsLocked(*inode, block, 1, to, kInvalidTier);
      pending.insert(pending.end(), runs.begin(), runs.end());
    }
    if (pending.empty()) {
      return Status::Ok();
    }

    attempt++;
    if (attempt > OccState::kMaxRetries) {
      // Lock-based fallback: copy while holding the file lock — writers
      // stall, but the migration is guaranteed to finish (§2.4: "Mux will
      // resort to a lock-based migration").
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        occ_stats_.lock_fallbacks++;
      }
      MUX_RETURN_IF_ERROR(CopyRuns(*inode, tiers, pending, to));
      MUX_ASSIGN_OR_RETURN(const TierInfo* dst, FindTier(tiers, to));
      vfs::FileHandle dst_handle;
      bool have_dst = false;
      {
        std::lock_guard<std::mutex> shadow_lock(inode->shadow_mu);
        auto it = inode->shadows.find(to);
        if (it != inode->shadows.end()) {
          dst_handle = it->second;
          have_dst = true;
        }
      }
      if (have_dst) {
        MUX_RETURN_IF_ERROR(dst->fs->Fsync(dst_handle, /*data_only=*/true));
      }
      MUX_RETURN_IF_ERROR(CommitRuns(*inode, tiers, pending, to, {}));
      return Status::Ok();
    }
    // Make sure shadows for any new source tiers are open before the next
    // pass is armed (an open failure must not leak the migrating flag).
    for (const auto& run : pending) {
      MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
      MUX_RETURN_IF_ERROR(
          ShadowHandleLocked(*inode, *src, /*create=*/false).status());
    }
    v1 = inode->occ.BeginPass();
    file_lock.unlock();
  }
}

Status Mux::MigrateFile(const std::string& path, TierId to, TierId from) {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  if (inode->type != vfs::FileType::kRegular) {
    return IsDirError(path);
  }
  uint64_t blocks = 0;
  {
    std::lock_guard<OpGate> file_lock(inode->mu);
    blocks = (inode->attrs.size() + kBlockSize - 1) / kBlockSize;
  }
  if (blocks == 0) {
    return Status::Ok();
  }
  return MigrateRangeInternal(inode, 0, blocks, to, from);
}

Status Mux::MigrateRange(const std::string& path, uint64_t first_block,
                         uint64_t count, TierId to) {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  if (inode->type != vfs::FileType::kRegular) {
    return IsDirError(path);
  }
  return MigrateRangeInternal(inode, first_block, count, to, kInvalidTier);
}

Status Mux::RunPolicyMigrations() {
  // Planning never touches ns_mu_ at all. Candidates come from the
  // creation-ordered file index, walked in bounded chunks under its own leaf
  // mutex; each inode is then viewed under a *shared* file lock (readers
  // keep flowing; only its own writers wait), with the heat fields under
  // meta_mu, their dedicated guard. Paths are read under the file lock —
  // Rename swaps inode->path under the exclusive file lock, so the string
  // is stable here. Foreground creates/renames/lookups are never blocked by
  // a planning pass, no matter how large the namespace is.
  const auto tier_set = SnapshotTierSet();
  if (tier_set == nullptr || tier_set->policy == nullptr ||
      tier_set->tiers.empty()) {
    return Status::Ok();
  }

  TieringView view;
  view.tiers = TierUsagesFor(tier_set->tiers);
  view.now = clock_->Now();
  std::unordered_map<std::string, uint64_t> planned_sizes;
  {
    IndexScanGuard scan(this);
    size_t cursor = 0;
    std::vector<std::shared_ptr<MuxInode>> chunk;
    chunk.reserve(kIndexScanChunk);
    while (CollectIndexChunk(&cursor, kIndexScanChunk, &chunk)) {
      metrics_.Add("mux.policy.scan_chunks", 1);
      for (const auto& inode : chunk) {
        if (inode->type != vfs::FileType::kRegular) {
          continue;
        }
        std::shared_lock<OpGate> file_lock(inode->mu);
        if (inode->unlinked.load(std::memory_order_acquire)) {
          continue;
        }
        FileView fv;
        fv.path = inode->path;
        fv.size = inode->attrs.size();
        {
          std::lock_guard<std::mutex> meta_lock(inode->meta_mu);
          fv.last_access = inode->last_access;
          fv.temperature = Decay(inode->temperature,
                                 view.now - inode->last_access);
        }
        for (const TierInfo& tier : tier_set->tiers) {
          const uint64_t blocks = inode->blt->BlocksOnTier(tier.id);
          if (blocks > 0) {
            fv.blocks_per_tier[tier.id] = blocks;
          }
          const uint64_t replicas = inode->blt->ReplicaBlocksOnTier(tier.id);
          if (replicas > 0) {
            fv.replica_blocks_per_tier[tier.id] = replicas;
          }
        }
        fv.dirty_blocks = inode->blt->DirtyBlocks();
        // The side table spares the dispatch loop below from re-resolving
        // paths for byte estimation.
        planned_sizes.emplace(fv.path, fv.size);
        view.files.push_back(std::move(fv));
      }
    }
  }

  std::vector<MigrationTask> tasks = tier_set->policy->PlanMigrations(view);
  if (tasks.empty()) {
    return MirrorSyncRound();
  }

  // Dispatch the plan through the I/O scheduler (§4): per-tier queues,
  // cost-estimated ordering, and priorities — promotions toward the fastest
  // tier dispatch before demotions, so a hot file waiting to come up is not
  // stuck behind bulk evictions. The scheduler sees the same pinned tier
  // snapshot the plan was computed against.
  IoScheduler scheduler(SchedAlgo::kCostBased, clock_, &metrics_);
  for (const TierInfo& tier : tier_set->tiers) {
    scheduler.RegisterTier(tier);
  }
  if (async_ != nullptr) {
    scheduler.AttachAsyncCore(async_.get());
  }
  const TierId fastest = FastestTierOf(tier_set->tiers);
  for (const MigrationTask& task : tasks) {
    IoRequest request;
    request.tier = task.to;
    request.is_write = true;
    request.offset = task.first_block * kBlockSize;
    // Estimate the moved volume for the cost-based order; whole-file tasks
    // use the size captured at planning time (a stale estimate only skews
    // queue order, never correctness).
    uint64_t bytes = task.count * kBlockSize;
    if (task.count == 0) {
      auto it = planned_sizes.find(task.path);
      if (it != planned_sizes.end()) {
        bytes = it->second;
      }
    }
    request.bytes = bytes;
    // Promotions toward the fastest tier and replica drops (cheap metadata +
    // punch work that frees capacity) dispatch first.
    request.priority =
        task.to == fastest || task.kind == MigrationKind::kDropReplica ? 0 : 1;
    request.execute = [this, task]() -> Status {
      Status status;
      switch (task.kind) {
        case MigrationKind::kAddReplica:
          status = task.count == 0
                       ? ReplicateFile(task.path, task.to)
                       : ReplicateRange(task.path, task.first_block,
                                        task.count, task.to);
          break;
        case MigrationKind::kDropReplica:
          status = DropReplica(task.path, task.to);
          break;
        case MigrationKind::kMove:
        default:
          status = task.count == 0
                       ? MigrateFile(task.path, task.to, task.from)
                       : MigrateRange(task.path, task.first_block, task.count,
                                      task.to);
          break;
      }
      if (status.code() == ErrorCode::kNotFound) {
        // The file vanished since planning; nothing to do.
        return Status::Ok();
      }
      return status;
    };
    MUX_RETURN_IF_ERROR(scheduler.Submit(std::move(request)));
  }

  // Drain the whole plan: a task that fails against a faulted tier is
  // recorded in the scheduler stats but does not stop the other tasks. The
  // round as a whole still succeeds — per-task failures are degraded
  // service, not a fatal error — and the stats are kept for introspection.
  // Drain mode: completion-based when the async core exists, otherwise the
  // legacy thread-per-tier parallel drain / serial round-robin ablations.
  const IoScheduler::DrainMode drain_mode =
      async_ != nullptr ? IoScheduler::DrainMode::kAsync
      : options_.parallel_migration_drain
          ? IoScheduler::DrainMode::kParallel
          : IoScheduler::DrainMode::kSerial;
  auto ran = scheduler.RunAll(drain_mode);
  const SchedulerStats round = scheduler.stats();
  hot_stats_.migration_task_failures.fetch_add(round.failures,
                                               std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    last_round_sched_stats_ = round;
  }
  if (round.failures > 0) {
    MUX_LOG(kWarning) << "policy migration round: " << round.failures
                      << " task(s) failed, last: " << round.last_error;
  }
  MUX_RETURN_IF_ERROR(ran.status());
  return MirrorSyncRound();
}

// Lazy mirror reconciliation rides on the policy round: after the plan
// drains, spend a bounded byte budget copying primary bytes over dirty
// mirror copies so they become readable again.
Status Mux::MirrorSyncRound() {
  if (options_.mirror_sync_budget_bytes == 0) {
    return Status::Ok();
  }
  auto synced = SyncMirrors(options_.mirror_sync_budget_bytes);
  if (!synced.ok()) {
    MUX_LOG(kWarning) << "mirror sync round: " << synced.status();
    return synced.status();
  }
  return Status::Ok();
}

SchedulerStats Mux::LastMigrationRoundStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_round_sched_stats_;
}

void Mux::StartBackgroundMigration(uint32_t interval_ms) {
  bool expected = false;
  if (!migration_running_.compare_exchange_strong(expected, true)) {
    return;
  }
  migration_thread_ = std::thread([this, interval_ms] {
    while (migration_running_.load(std::memory_order_relaxed)) {
      Status status = RunPolicyMigrations();
      if (!status.ok()) {
        MUX_LOG(kWarning) << "background migration: " << status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  });
}

void Mux::StopBackgroundMigration() {
  if (migration_running_.exchange(false) && migration_thread_.joinable()) {
    migration_thread_.join();
  }
}

// ---- bookkeeping ------------------------------------------------------------------

MuxSnapshot Mux::BuildSnapshotChunked() const {
  // Walks the creation-ordered file index in bounded chunks — file_index_mu_
  // is held only long enough to copy one chunk of pointers, each inode is
  // read under its shared file lock, and ns_mu_ is never taken. Foreground
  // namespace traffic flows freely during a checkpoint of any size.
  //
  // Consistency: creation order guarantees a parent directory precedes every
  // child, and the chunk collector re-reads the index end each round, so a
  // snapshot can never contain a child whose parent it missed. Inodes
  // unlinked mid-scan are skipped via the `unlinked` flag; renames are
  // caught by the caller's ns_generation_ check (Checkpoint retries).
  MuxSnapshot snapshot;
  IndexScanGuard scan(this);
  size_t cursor = 0;
  std::vector<std::shared_ptr<MuxInode>> chunk;
  chunk.reserve(kIndexScanChunk);
  while (CollectIndexChunk(&cursor, kIndexScanChunk, &chunk)) {
    metrics_.Add("mux.ckpt.chunks", 1);
    for (const auto& inode : chunk) {
      std::shared_lock<OpGate> file_lock(inode->mu);
      if (inode->unlinked.load(std::memory_order_acquire)) {
        continue;
      }
      FileSnapshot file;
      file.path = inode->path;
      file.is_directory = inode->type == vfs::FileType::kDirectory;
      file.occ_version = inode->occ.version();
      {
        // meta_mu, not just the shared file lock: shared-lock readers
        // update atime/affinity under meta_mu concurrently.
        std::lock_guard<std::mutex> meta_lock(inode->meta_mu);
        file.size = inode->attrs.size();
        file.mtime = inode->attrs.mtime();
        file.atime = inode->attrs.atime();
        file.ctime = inode->attrs.ctime();
        file.mode = inode->attrs.mode();
        file.temperature = inode->temperature;
        file.last_access = inode->last_access;
        for (int a = 0; a < kAttrCount; ++a) {
          file.attr_owners[a] = inode->attrs.Owner(static_cast<Attr>(a));
        }
      }
      if (inode->blt != nullptr) {
        file.runs = inode->blt->AllRuns();
        file.mirror_runs = inode->blt->AllMirrorRuns();
      }
      snapshot.files.push_back(std::move(file));
    }
  }
  metrics_.Add("mux.ckpt.files", snapshot.files.size());
  // Parents before children so recovery can link as it goes.
  std::sort(snapshot.files.begin(), snapshot.files.end(),
            [](const FileSnapshot& a, const FileSnapshot& b) {
              return a.path < b.path;
            });
  return snapshot;
}

Status Mux::Checkpoint() {
  const auto tier_set = SnapshotTierSet();
  if (tier_set == nullptr || tier_set->tiers.empty()) {
    return InternalError("no tiers registered");
  }
  MUX_ASSIGN_OR_RETURN(
      const TierInfo* fastest,
      FindTier(tier_set->tiers, FastestTierOf(tier_set->tiers)));

  // Common case: build the snapshot with no namespace lock at all, then
  // validate against the destructive-op generation (seqlock pattern: odd =
  // an unlink/rmdir/rename is mid-flight, changed = one committed while we
  // scanned). Either way the scan may have seen a half-applied op, so
  // retry. Creates don't bump the generation — including (or missing) a
  // file born mid-checkpoint is a valid recovery point.
  constexpr int kLockFreeAttempts = 3;
  for (int attempt = 0; attempt < kLockFreeAttempts; ++attempt) {
    const uint64_t gen = ns_generation_.load(std::memory_order_acquire);
    if (gen % 2 != 0) {
      std::this_thread::yield();
      continue;
    }
    MuxSnapshot snapshot = BuildSnapshotChunked();
    if (ns_generation_.load(std::memory_order_acquire) == gen) {
      return SaveSnapshot(fastest->fs, options_.meta_path, snapshot);
    }
    metrics_.Add("mux.ckpt.retries", 1);
  }

  // A destructive-op storm kept invalidating the lock-free scan; fall back
  // to holding ns_mu_ shared (destructive ops take it exclusive, so the
  // generation cannot move), which is the pre-index behaviour minus the
  // full-map walk.
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  const MuxSnapshot snapshot = BuildSnapshotChunked();
  return SaveSnapshot(fastest->fs, options_.meta_path, snapshot);
}

Status Mux::Recover() {
  std::lock_guard<std::shared_mutex> lock(ns_mu_);
  if (tiers_.empty()) {
    return InternalError("no tiers registered");
  }
  // A recovery rewrites the whole namespace; any concurrent lock-free
  // checkpoint scan must see the generation move and retry.
  NamespaceMutationGuard mutation(this);
  MUX_ASSIGN_OR_RETURN(const TierInfo* fastest,
                       FindTier(tiers_, FastestTierLocked()));
  MUX_ASSIGN_OR_RETURN(MuxSnapshot snapshot,
                       LoadSnapshot(fastest->fs, options_.meta_path));

  // Reset the namespace to just the root; open handles do not survive a
  // recovery (their inodes are rebuilt), so drop every shard.
  inodes_.clear();
  {
    std::lock_guard<std::mutex> index_lock(file_index_mu_);
    file_index_.clear();
    index_dead_hint_ = 0;
  }
  for (HandleShard& shard : handle_shards_) {
    std::lock_guard<std::shared_mutex> shard_lock(shard.mu);
    shard.files.clear();
  }
  auto root = std::make_shared<MuxInode>();
  root->ino = kRootIno;
  root->type = vfs::FileType::kDirectory;
  root->path = "/";
  root_ = root;
  inodes_.emplace(kRootIno, root);
  next_ino_ = 2;

  for (const FileSnapshot& file : snapshot.files) {
    auto parent = ResolveDirLocked(vfs::Dirname(file.path));
    if (!parent.ok()) {
      return CorruptionError("snapshot parent missing for " + file.path);
    }
    auto inode = std::make_shared<MuxInode>();
    inode->ino = next_ino_++;
    inode->type = file.is_directory ? vfs::FileType::kDirectory
                                    : vfs::FileType::kRegular;
    inode->path = file.path;
    inode->attrs.set_ctime(file.ctime);
    const TierId size_owner = file.attr_owners[static_cast<int>(Attr::kSize)];
    inode->attrs.UpdateSize(file.size, size_owner);
    inode->attrs.UpdateMtime(file.mtime,
                             file.attr_owners[static_cast<int>(Attr::kMtime)]);
    inode->attrs.UpdateAtime(file.atime,
                             file.attr_owners[static_cast<int>(Attr::kAtime)]);
    inode->attrs.UpdateMode(file.mode,
                            file.attr_owners[static_cast<int>(Attr::kMode)]);
    inode->occ.RestoreVersion(file.occ_version);
    // Policy state survives recovery: without it every file looks ice-cold
    // after a remount and LRU/temperature policies immediately misplace
    // data.
    inode->temperature = file.temperature;
    inode->last_access = file.last_access;
    if (!file.is_directory) {
      inode->blt = MakeBlt(options_.blt_kind);
      for (const auto& run : file.runs) {
        inode->blt->SetRange(run.first_block, run.count, run.tier);
        inode->touched_tiers.insert(run.tier);
      }
      for (const auto& mrun : file.mirror_runs) {
        for (uint32_t bits = mrun.extra; bits != 0; bits &= bits - 1) {
          const TierId t = static_cast<TierId>(std::countr_zero(bits));
          // Dirty bits round-trip bit-exact: stale copies stay stale until
          // the first SyncMirrors pass reconciles them.
          inode->blt->AddResidency(mrun.first_block, mrun.count, t,
                                   (mrun.dirty & ResidencySet::Bit(t)) != 0);
          inode->touched_tiers.insert(t);
        }
      }
    }
    (*parent)->children.emplace(vfs::Basename(file.path), inode->ino);
    inodes_.emplace(inode->ino, inode);
    // Snapshot files arrive parent-first (sorted by path), so re-inserting
    // in order preserves the index's parent-before-child invariant.
    IndexInsertLocked(inode);
  }
  return Status::Ok();
}

// ---- introspection -------------------------------------------------------------------

MuxStats Mux::stats() const {
  // Hot-path counters are relaxed atomics; each one is internally
  // consistent, and the OCC aggregates are snapshotted under stats_mu_.
  MuxStats out;
  out.reads = hot_stats_.reads.load(std::memory_order_relaxed);
  out.writes = hot_stats_.writes.load(std::memory_order_relaxed);
  out.split_segments =
      hot_stats_.split_segments.load(std::memory_order_relaxed);
  out.migration_passes =
      hot_stats_.migration_passes.load(std::memory_order_relaxed);
  out.migrated_blocks =
      hot_stats_.migrated_blocks.load(std::memory_order_relaxed);
  out.migration_task_failures =
      hot_stats_.migration_task_failures.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out.occ = occ_stats_;
  }
  return out;
}

ScmCacheStats Mux::CacheStats() const {
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  if (cache_ == nullptr) {
    return ScmCacheStats{};
  }
  return cache_->stats();
}

Result<Mux::FileHeat> Mux::Heat(const std::string& path) const {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  std::shared_lock<OpGate> file_lock(inode->mu);
  // meta_mu: shared-lock readers update heat concurrently (Touch).
  std::lock_guard<std::mutex> meta_lock(inode->meta_mu);
  FileHeat heat;
  heat.temperature = inode->temperature;
  heat.last_access = inode->last_access;
  return heat;
}

Result<std::map<TierId, uint64_t>> Mux::FileTierBreakdown(
    const std::string& path) const {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  const auto tier_set = SnapshotTierSet();
  std::shared_lock<OpGate> file_lock(inode->mu);
  std::map<TierId, uint64_t> breakdown;
  if (inode->blt != nullptr) {
    for (const TierInfo& tier : tier_set->tiers) {
      const uint64_t blocks = inode->blt->BlocksOnTier(tier.id);
      if (blocks > 0) {
        breakdown[tier.id] = blocks;
      }
    }
  }
  return breakdown;
}

uint64_t Mux::BltMemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  uint64_t total = 0;
  for (const auto& [ino, inode] : inodes_) {
    std::shared_lock<OpGate> file_lock(inode->mu);
    if (inode->blt != nullptr) {
      total += inode->blt->MemoryBytes();
    }
  }
  return total;
}

// ---- replication / mirror maintenance (MOST) -----------------------------------------
//
// The paper notes that composing file systems opens "the opportunity for
// data replication across devices". MOST makes that a first-class residency
// state: ReplicateRange *adds* residency on a second tier through the same
// shadow-file mechanism the primary copies use (same path, same offsets);
// reads are then served from the fastest idle clean copy (ReadLocked) and
// fail over to survivors; writes absorb on one copy and mark the rest dirty;
// SyncMirrors lazily re-converges them.

Status Mux::ReplicateRange(const std::string& path, uint64_t first_block,
                           uint64_t count, TierId replica_tier) {
  if (ResidencySet::Bit(replica_tier) == 0) {
    return InvalidArgumentError("tier id too large for mirror residency");
  }
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  if (inode->type != vfs::FileType::kRegular) {
    return IsDirError(path);
  }
  const auto tier_set = SnapshotTierSet();
  const std::vector<TierInfo>& tiers = tier_set->tiers;
  MUX_ASSIGN_OR_RETURN(const TierInfo* replica, FindTier(tiers, replica_tier));

  std::lock_guard<OpGate> file_lock(inode->mu);
  MUX_ASSIGN_OR_RETURN(vfs::FileHandle replica_shadow,
                       ShadowHandleLocked(*inode, *replica, /*create=*/true));
  std::vector<uint8_t> buf;
  for (const auto& run : inode->blt->Runs(first_block, count)) {
    if (run.tier == kInvalidTier) {
      continue;  // holes have no content to mirror
    }
    if (run.tier == replica_tier) {
      continue;  // the primary already lives there
    }
    MUX_ASSIGN_OR_RETURN(const TierInfo* src, FindTier(tiers, run.tier));
    MUX_ASSIGN_OR_RETURN(vfs::FileHandle src_shadow,
                         ShadowHandleLocked(*inode, *src, /*create=*/false));
    constexpr uint64_t kSlice = 256;  // 1 MiB copies
    for (uint64_t done = 0; done < run.count; done += kSlice) {
      const uint64_t blocks = std::min(kSlice, run.count - done);
      const uint64_t off = (run.first_block + done) * kBlockSize;
      buf.resize(blocks * kBlockSize);
      MUX_ASSIGN_OR_RETURN(uint64_t got, src->fs->Read(src_shadow, off,
                                                       buf.size(), buf.data()));
      if (got < buf.size()) {
        std::memset(buf.data() + got, 0, buf.size() - got);
      }
      MUX_RETURN_IF_ERROR(
          replica->fs->Write(replica_shadow, off, buf.data(), buf.size())
              .status());
    }
    // The bytes just copied are current: a clean mirror copy.
    inode->blt->AddResidency(run.first_block, run.count, replica_tier,
                             /*dirty=*/false);
  }
  inode->touched_tiers.insert(replica_tier);
  // The mirror is only a crash-consistency improvement once durable.
  return replica->fs->Fsync(replica_shadow, /*data_only=*/true);
}

Status Mux::ReplicateFile(const std::string& path, TierId replica_tier) {
  uint64_t blocks = 0;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(auto inode, ResolveLocked(path));
    if (inode->type != vfs::FileType::kRegular) {
      return IsDirError(path);
    }
    std::lock_guard<OpGate> file_lock(inode->mu);
    blocks = (inode->attrs.size() + kBlockSize - 1) / kBlockSize;
  }
  if (blocks == 0) {
    return Status::Ok();
  }
  return ReplicateRange(path, 0, blocks, replica_tier);
}

Status Mux::DropReplicasLocked(MuxInode& inode,
                               const std::vector<TierInfo>& tiers,
                               TierId tier) {
  // AllMirrorRuns returns a copied vector, so mutating residency inside the
  // loop is safe. `extra` never contains the primary tier, so the whole run
  // range can be punched without a primary-ownership skip.
  for (const auto& mrun : inode.blt->AllMirrorRuns()) {
    for (uint32_t bits = mrun.extra; bits != 0; bits &= bits - 1) {
      const TierId t = static_cast<TierId>(std::countr_zero(bits));
      if (tier != kInvalidTier && t != tier) {
        continue;
      }
      auto info = FindTier(tiers, t);
      if (info.ok()) {
        auto shadow = ShadowHandleLocked(inode, **info, /*create=*/false);
        if (shadow.ok()) {
          (void)(*info)->fs->PunchHole(*shadow, mrun.first_block * kBlockSize,
                                       mrun.count * kBlockSize);
        }
      }
      inode.blt->DropResidency(mrun.first_block, mrun.count, t);
    }
  }
  return Status::Ok();
}

Status Mux::DropReplica(const std::string& path, TierId replica_tier) {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  if (inode->type != vfs::FileType::kRegular) {
    return IsDirError(path);
  }
  const auto tier_set = SnapshotTierSet();
  std::lock_guard<OpGate> file_lock(inode->mu);
  return DropReplicasLocked(*inode, tier_set->tiers, replica_tier);
}

Status Mux::DropReplicas(const std::string& path) {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  if (inode->type != vfs::FileType::kRegular) {
    return IsDirError(path);
  }
  const auto tier_set = SnapshotTierSet();
  std::lock_guard<OpGate> file_lock(inode->mu);
  return DropReplicasLocked(*inode, tier_set->tiers, kInvalidTier);
}

Result<std::map<TierId, uint64_t>> Mux::ReplicaBreakdown(
    const std::string& path) const {
  std::shared_ptr<MuxInode> inode;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    MUX_ASSIGN_OR_RETURN(inode, ResolveLocked(path));
  }
  const auto tier_set = SnapshotTierSet();
  std::shared_lock<OpGate> file_lock(inode->mu);
  std::map<TierId, uint64_t> breakdown;
  if (inode->blt != nullptr) {
    for (const TierInfo& tier : tier_set->tiers) {
      const uint64_t blocks = inode->blt->ReplicaBlocksOnTier(tier.id);
      if (blocks > 0) {
        breakdown[tier.id] = blocks;
      }
    }
  }
  return breakdown;
}

Result<uint64_t> Mux::MirrorSyncFile(const std::shared_ptr<MuxInode>& inode,
                                     const std::vector<TierInfo>& tiers,
                                     uint64_t* budget) {
  std::lock_guard<OpGate> file_lock(inode->mu);
  if (inode->unlinked.load(std::memory_order_acquire) ||
      inode->blt == nullptr) {
    return uint64_t{0};
  }
  uint64_t synced = 0;
  std::vector<uint8_t> buf;
  // Tiers whose shadows received reconciled bytes, for the final fsync.
  uint32_t fsync_tiers = 0;
  for (const auto& mrun : inode->blt->DirtyRuns()) {
    for (uint32_t bits = mrun.dirty; bits != 0; bits &= bits - 1) {
      const TierId t = static_cast<TierId>(std::countr_zero(bits));
      const uint64_t max_blocks = *budget / kBlockSize;
      if (max_blocks == 0) {
        *budget = 0;
        return synced;  // budget exhausted; the rest waits for the next round
      }
      const uint64_t count = std::min(mrun.count, max_blocks);
      auto dst = FindTier(tiers, t);
      if (!dst.ok()) {
        metrics_.Add("mux.mirror.sync_failures", 1);
        continue;
      }
      auto dst_shadow = ShadowHandleLocked(*inode, **dst, /*create=*/true);
      if (!dst_shadow.ok()) {
        metrics_.Add("mux.mirror.sync_failures", 1);
        continue;
      }
      for (const auto& piece : inode->blt->Runs(mrun.first_block, count)) {
        if (piece.tier == kInvalidTier || piece.tier == t) {
          continue;
        }
        auto src = FindTier(tiers, piece.tier);
        if (!src.ok()) {
          metrics_.Add("mux.mirror.sync_failures", 1);
          continue;
        }
        auto src_shadow = ShadowHandleLocked(*inode, **src, /*create=*/false);
        if (!src_shadow.ok()) {
          metrics_.Add("mux.mirror.sync_failures", 1);
          continue;
        }
        constexpr uint64_t kSlice = 256;  // 1 MiB copies
        bool copied = true;
        for (uint64_t done = 0; done < piece.count && copied;
             done += kSlice) {
          const uint64_t blocks = std::min(kSlice, piece.count - done);
          const uint64_t off = (piece.first_block + done) * kBlockSize;
          buf.resize(blocks * kBlockSize);
          auto got = (*src)->fs->Read(*src_shadow, off, buf.size(),
                                      buf.data());
          if (!got.ok()) {
            copied = false;
            break;
          }
          if (*got < buf.size()) {
            std::memset(buf.data() + *got, 0, buf.size() - *got);
          }
          if (!(*dst)->fs->Write(*dst_shadow, off, buf.data(), buf.size())
                   .ok()) {
            copied = false;
            break;
          }
        }
        if (!copied) {
          // Leave the copy dirty; a later round retries.
          metrics_.Add("mux.mirror.sync_failures", 1);
          continue;
        }
        inode->blt->CleanOn(piece.first_block, piece.count, t);
        const uint64_t bytes = piece.count * kBlockSize;
        synced += bytes;
        *budget -= std::min(*budget, bytes);
        metrics_.Add("mux.mirror.cleaned_blocks", piece.count);
        fsync_tiers |= ResidencySet::Bit(t);
      }
    }
  }
  for (uint32_t bits = fsync_tiers; bits != 0; bits &= bits - 1) {
    const TierId t = static_cast<TierId>(std::countr_zero(bits));
    auto dst = FindTier(tiers, t);
    if (!dst.ok()) {
      continue;
    }
    auto shadow = ShadowHandleLocked(*inode, **dst, /*create=*/false);
    if (!shadow.ok() ||
        !(*dst)->fs->Fsync(*shadow, /*data_only=*/true).ok()) {
      // The copy is clean in memory but possibly not durable; report it but
      // do not re-dirty — the bytes on media are current.
      metrics_.Add("mux.mirror.sync_failures", 1);
    }
  }
  return synced;
}

Result<uint64_t> Mux::SyncMirrors(uint64_t max_bytes) {
  const auto tier_set = SnapshotTierSet();
  if (tier_set == nullptr || tier_set->tiers.empty()) {
    return uint64_t{0};
  }
  uint64_t budget = max_bytes;
  uint64_t synced = 0;
  bool any_dirty = false;
  IndexScanGuard scan(this);
  size_t cursor = 0;
  std::vector<std::shared_ptr<MuxInode>> chunk;
  chunk.reserve(kIndexScanChunk);
  while (budget > 0 && CollectIndexChunk(&cursor, kIndexScanChunk, &chunk)) {
    for (const auto& inode : chunk) {
      if (budget == 0) {
        break;
      }
      if (inode->type != vfs::FileType::kRegular) {
        continue;
      }
      {
        // Cheap skip without the exclusive lock: most files have no dirty
        // mirror copies at all.
        std::shared_lock<OpGate> file_lock(inode->mu);
        if (inode->unlinked.load(std::memory_order_acquire) ||
            inode->blt == nullptr || inode->blt->DirtyBlocks() == 0) {
          continue;
        }
      }
      any_dirty = true;
      MUX_ASSIGN_OR_RETURN(uint64_t got,
                           MirrorSyncFile(inode, tier_set->tiers, &budget));
      synced += got;
    }
  }
  if (any_dirty) {
    metrics_.Add("mux.mirror.sync_rounds", 1);
  }
  if (synced > 0) {
    metrics_.Add("mux.mirror.sync_bytes", synced);
  }
  return synced;
}

// ---- consistency check (Fsck) --------------------------------------------------------

Result<Mux::ScrubReport> Mux::Fsck() {
  std::vector<std::shared_ptr<MuxInode>> files;
  const auto tier_set = SnapshotTierSet();
  const std::vector<TierInfo>& tiers = tier_set->tiers;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    for (const auto& [ino, inode] : inodes_) {
      if (inode->type == vfs::FileType::kRegular) {
        files.push_back(inode);
      }
    }
  }

  ScrubReport report;
  std::vector<uint8_t> primary_buf(kBlockSize);
  std::vector<uint8_t> replica_buf(kBlockSize);
  for (const auto& inode : files) {
    std::lock_guard<OpGate> file_lock(inode->mu);
    report.files_checked++;
    const uint64_t size_blocks =
        (inode->attrs.size() + kBlockSize - 1) / kBlockSize;
    for (const auto& run : inode->blt->AllRuns()) {
      report.blocks_checked += run.count;
      // 1. No mapping may extend past the logical size.
      if (run.first_block + run.count > size_blocks) {
        report.size_inconsistencies++;
      }
      // 2. The tier the BLT names must hold a shadow file.
      auto tier = FindTier(tiers, run.tier);
      if (!tier.ok() || !(*tier)->fs->Stat(inode->path).ok()) {
        report.missing_shadows++;
      }
    }
    // 3. Every extra resident copy must have a shadow too; clean copies must
    //    be byte-identical to the primary, dirty copies are reported but
    //    allowed to diverge (lazy reconciliation has not caught up yet).
    for (const auto& mrun : inode->blt->AllMirrorRuns()) {
      if (mrun.first_block + mrun.count > size_blocks) {
        report.size_inconsistencies++;
      }
      for (uint32_t bits = mrun.extra; bits != 0; bits &= bits - 1) {
        const TierId t = static_cast<TierId>(std::countr_zero(bits));
        report.blocks_checked += mrun.count;
        const bool dirty = (mrun.dirty & ResidencySet::Bit(t)) != 0;
        if (dirty) {
          // Stale by design (lazy reconciliation has not caught up); counted
          // even when the tier is unreachable, and never byte-compared.
          report.dirty_replicas += mrun.count;
        }
        auto replica_tier = FindTier(tiers, t);
        if (!replica_tier.ok() ||
            !(*replica_tier)->fs->Stat(inode->path).ok()) {
          report.missing_shadows++;
          continue;
        }
        if (dirty) {
          continue;
        }
        auto replica_shadow =
            ShadowHandleLocked(*inode, **replica_tier, false);
        if (!replica_shadow.ok()) {
          report.missing_shadows++;
          continue;
        }
        for (uint64_t block = mrun.first_block;
             block < mrun.first_block + mrun.count; ++block) {
          const TierId primary = inode->blt->Lookup(block);
          auto primary_tier = FindTier(tiers, primary);
          if (!primary_tier.ok()) {
            report.replica_mismatches++;
            continue;
          }
          auto primary_shadow =
              ShadowHandleLocked(*inode, **primary_tier, false);
          if (!primary_shadow.ok()) {
            report.replica_mismatches++;
            continue;
          }
          auto primary_read =
              (*primary_tier)->fs->Read(*primary_shadow, block * kBlockSize,
                                        kBlockSize, primary_buf.data());
          auto replica_read =
              (*replica_tier)->fs->Read(*replica_shadow, block * kBlockSize,
                                        kBlockSize, replica_buf.data());
          if (!primary_read.ok() || !replica_read.ok()) {
            report.replica_mismatches++;
            continue;
          }
          if (*primary_read < kBlockSize) {
            std::memset(primary_buf.data() + *primary_read, 0,
                        kBlockSize - *primary_read);
          }
          if (*replica_read < kBlockSize) {
            std::memset(replica_buf.data() + *replica_read, 0,
                        kBlockSize - *replica_read);
          }
          if (primary_buf != replica_buf) {
            report.replica_mismatches++;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace mux::core
