// Cache replacement policies for the SCM cache (§2.5).
//
// The paper uses Multi-generational LRU, "the algorithm Linux uses for its
// page caches". MglruPolicy keeps kGenerations LRU lists; entries enter the
// youngest generation, age toward the oldest, and get a second chance when
// their access bit is set at eviction scan time (the multi-generational
// clock at the heart of MGLRU). PlainLruPolicy is the single-list classic,
// kept for the ablation benchmark.
#ifndef MUX_CORE_MGLRU_H_
#define MUX_CORE_MGLRU_H_

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"

namespace mux::core {

// Operates on abstract slot ids; the CacheController maps (file, block)
// pairs to slots.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual std::string_view Name() const = 0;
  virtual void Inserted(uint32_t slot) = 0;
  virtual void Touched(uint32_t slot) = 0;
  // Picks and removes the victim slot. Fails only when empty.
  virtual Result<uint32_t> Evict() = 0;
  virtual void Removed(uint32_t slot) = 0;
  virtual size_t Size() const = 0;
};

class MglruPolicy : public ReplacementPolicy {
 public:
  static constexpr int kGenerations = 4;

  std::string_view Name() const override { return "mglru"; }
  void Inserted(uint32_t slot) override;
  void Touched(uint32_t slot) override;
  Result<uint32_t> Evict() override;
  void Removed(uint32_t slot) override;
  size_t Size() const override { return entries_.size(); }

  // Ages every generation by one step (moves gen g to g+1). Called
  // periodically by the cache controller.
  void AgeGenerations();

 private:
  struct Entry {
    int generation = 0;
    bool accessed = false;
    std::list<uint32_t>::iterator pos;
  };
  // generation -> LRU list (front = most recently inserted).
  std::array<std::list<uint32_t>, kGenerations> gens_;
  std::unordered_map<uint32_t, Entry> entries_;
};

class PlainLruPolicy : public ReplacementPolicy {
 public:
  std::string_view Name() const override { return "lru"; }
  void Inserted(uint32_t slot) override;
  void Touched(uint32_t slot) override;
  Result<uint32_t> Evict() override;
  void Removed(uint32_t slot) override;
  size_t Size() const override { return entries_.size(); }

 private:
  std::list<uint32_t> lru_;  // front = most recent
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> entries_;
};

// Builds one policy instance. The sharded cache directory calls this once
// per shard, so replacement state (like the policies themselves) needs no
// internal locking — each instance is guarded by its shard's mutex.
std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(bool use_mglru);

}  // namespace mux::core

#endif  // MUX_CORE_MGLRU_H_
