// Device performance profiles.
//
// A profile captures everything the simulator and Mux's I/O scheduler need
// to know about a device: capacity, access granularity, and the latency /
// bandwidth model. Presets approximate the paper's testbed (Optane PMem 200,
// Optane SSD DC P4800X, Seagate Exos X18); see DESIGN.md for the
// substitution rationale.
#ifndef MUX_DEVICE_DEVICE_PROFILE_H_
#define MUX_DEVICE_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>

namespace mux::device {

enum class DeviceKind : uint8_t {
  kPm,       // byte-addressable persistent memory
  kSsd,      // block device, no seek penalty, deep queue
  kHdd,      // block device, seek-dominated, single queue
  kGeneric,  // memory-backed test device
};

std::string_view DeviceKindName(DeviceKind kind);

struct DeviceProfile {
  DeviceKind kind = DeviceKind::kGeneric;
  std::string name;
  uint64_t capacity_bytes = 0;
  uint32_t block_size = 4096;

  // Fixed per-operation latency in simulated ns (command overhead, media
  // access for the first byte).
  uint64_t read_latency_ns = 0;
  uint64_t write_latency_ns = 0;

  // Streaming bandwidth in bytes per simulated ns (1.0 == 1 GB/s ~= 0.93GiB/s).
  double read_bw_bytes_per_ns = 1.0;
  double write_bw_bytes_per_ns = 1.0;

  // HDD only: cost of a full-stroke seek; actual seeks scale with LBA
  // distance. Sequential access pays no seek.
  uint64_t full_seek_ns = 0;

  // PM only: cost of persisting one cache line (CLFLUSH/CLWB + fence share).
  uint64_t persist_latency_ns = 0;

  bool byte_addressable = false;

  // Concurrent commands the device can usefully service; consumed by Mux's
  // I/O scheduler.
  uint32_t queue_depth = 1;

  uint64_t capacity_blocks() const { return capacity_bytes / block_size; }

  // Estimated service time for a transfer of `bytes` (no seek component).
  uint64_t EstimateReadNs(uint64_t bytes) const;
  uint64_t EstimateWriteNs(uint64_t bytes) const;

  // Presets approximating the paper's testbed devices.
  static DeviceProfile OptanePm(uint64_t capacity_bytes);
  static DeviceProfile OptaneSsd(uint64_t capacity_bytes);
  static DeviceProfile ExosHdd(uint64_t capacity_bytes);
  // Zero-latency memory device for unit tests.
  static DeviceProfile TestRam(uint64_t capacity_bytes);
};

}  // namespace mux::device

#endif  // MUX_DEVICE_DEVICE_PROFILE_H_
