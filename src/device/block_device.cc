#include "src/device/block_device.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace mux::device {

BlockDevice::BlockDevice(DeviceProfile profile, SimClock* clock)
    : profile_(std::move(profile)), clock_(clock) {
  durable_.resize(profile_.capacity_bytes, 0);
}

Status BlockDevice::CheckRange(uint64_t lba, uint32_t count) const {
  if (count == 0) {
    return InvalidArgumentError("zero-length transfer");
  }
  if (lba + count > capacity_blocks() || lba + count < lba) {
    return OutOfRangeError("block range beyond device capacity");
  }
  return Status::Ok();
}

uint64_t BlockDevice::SeekCost(uint64_t lba) const {
  if (profile_.full_seek_ns == 0) {
    return 0;
  }
  if (lba == last_lba_) {
    return 0;  // sequential: head already there
  }
  const uint64_t distance = lba > last_lba_ ? lba - last_lba_ : last_lba_ - lba;
  const uint64_t span = std::max<uint64_t>(capacity_blocks(), 1);
  // Seek time grows sublinearly with distance (settle time dominates short
  // seeks); a simple sqrt model captures that.
  const double frac = static_cast<double>(distance) / static_cast<double>(span);
  if (frac < 1e-9) {
    return 0;
  }
  // min seek = quarter stroke cost
  const double scaled = 0.25 + 0.75 * std::sqrt(frac);
  return static_cast<uint64_t>(static_cast<double>(profile_.full_seek_ns) *
                               scaled);
}

void BlockDevice::AttachObs(obs::MetricsRegistry* metrics,
                            obs::TraceBuffer* trace, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  trace_ = trace;
  obs_label_ = std::move(label);
  obs_media_counter_ = "device." + obs_label_ + ".media_ns";
  obs_read_hist_ = "device." + obs_label_ + ".read_ns";
  obs_write_hist_ = "device." + obs_label_ + ".write_ns";
}

void BlockDevice::RecordMediaLocked(const std::string& hist, const char* op,
                                    uint64_t bytes, uint64_t cost) {
  if (metrics_ != nullptr) {
    metrics_->Add(obs_media_counter_, cost);
    if (!hist.empty()) {
      metrics_->Observe(hist, cost);
    }
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.layer = "device";
    event.op = obs_label_ + "." + op;
    event.bytes = bytes;
    event.duration_ns = cost;
    event.start_ns = clock_->Now() - cost;
    trace_->Record(std::move(event));
  }
}

Status BlockDevice::ReadBlocks(uint64_t lba, uint32_t count, uint8_t* out) {
  MUX_RETURN_IF_ERROR(CheckRange(lba, count));
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_reads_) {
    return IoError("injected read fault (device offline)");
  }
  const uint64_t bytes = static_cast<uint64_t>(count) * block_size();
  const uint64_t seek = SeekCost(lba);
  if (seek > 0) {
    stats_.seeks++;
  }
  // Seek-model devices stream sequential blocks: once the head is
  // positioned, continuing from last_lba_ pays bandwidth only (no
  // rotational latency per block).
  const bool streaming = profile_.full_seek_ns > 0 && lba == last_lba_;
  const uint64_t cost = seek + (streaming ? 0 : profile_.read_latency_ns) +
                        static_cast<uint64_t>(static_cast<double>(bytes) /
                                              profile_.read_bw_bytes_per_ns);
  clock_->Advance(cost);
  stats_.busy_ns += cost;
  stats_.read_ops++;
  stats_.bytes_read += bytes;
  RecordMediaLocked(obs_read_hist_, "read", bytes, cost);

  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t block = lba + i;
    uint8_t* dst = out + static_cast<uint64_t>(i) * block_size();
    if (crash_sim_) {
      auto it = cache_.find(block);
      if (it != cache_.end()) {
        std::memcpy(dst, it->second.data(), block_size());
        continue;
      }
    }
    std::memcpy(dst, durable_.data() + block * block_size(), block_size());
  }
  last_lba_ = lba + count;
  return Status::Ok();
}

Status BlockDevice::WriteBlocks(uint64_t lba, uint32_t count,
                                const uint8_t* data) {
  MUX_RETURN_IF_ERROR(CheckRange(lba, count));
  std::lock_guard<std::mutex> lock(mu_);
  if (writes_until_fault_ >= 0) {
    if (writes_until_fault_ == 0) {
      return IoError("injected write fault");
    }
    writes_until_fault_--;
  }
  const uint64_t bytes = static_cast<uint64_t>(count) * block_size();
  const uint64_t seek = SeekCost(lba);
  if (seek > 0) {
    stats_.seeks++;
  }
  const bool streaming = profile_.full_seek_ns > 0 && lba == last_lba_;
  const uint64_t cost = seek + (streaming ? 0 : profile_.write_latency_ns) +
                        static_cast<uint64_t>(static_cast<double>(bytes) /
                                              profile_.write_bw_bytes_per_ns);
  clock_->Advance(cost);
  stats_.busy_ns += cost;
  stats_.write_ops++;
  stats_.bytes_written += bytes;
  RecordMediaLocked(obs_write_hist_, "write", bytes, cost);

  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t block = lba + i;
    const uint8_t* src = data + static_cast<uint64_t>(i) * block_size();
    if (crash_sim_) {
      auto& slot = cache_[block];
      slot.assign(src, src + block_size());
    } else {
      std::memcpy(durable_.data() + block * block_size(), src, block_size());
    }
  }
  last_lba_ = lba + count;
  return Status::Ok();
}

void BlockDevice::SubmitRead(uint64_t lba, uint32_t count, uint8_t* out,
                             SimTime origin, IoDoneFn done) {
  ScopedTimeCursor cursor(clock_, origin);
  const Status status = ReadBlocks(lba, count, out);
  const SimTime service_ns = cursor.Release();
  done(status, service_ns);
}

void BlockDevice::SubmitWrite(uint64_t lba, uint32_t count,
                              const uint8_t* data, SimTime origin,
                              IoDoneFn done) {
  ScopedTimeCursor cursor(clock_, origin);
  const Status status = WriteBlocks(lba, count, data);
  const SimTime service_ns = cursor.Release();
  done(status, service_ns);
}

Status BlockDevice::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (writes_until_fault_ == 0) {
    return IoError("injected flush fault");
  }
  stats_.flushes++;
  if (crash_sim_ && !cache_.empty()) {
    // Charge the writeback of the cached blocks.
    const uint64_t bytes = cache_.size() * block_size();
    const uint64_t cost = profile_.EstimateWriteNs(bytes);
    clock_->Advance(cost);
    stats_.busy_ns += cost;
    RecordMediaLocked(/*hist=*/"", "flush", bytes, cost);
    for (const auto& [block, content] : cache_) {
      std::memcpy(durable_.data() + block * block_size(), content.data(),
                  block_size());
    }
    cache_.clear();
  } else {
    clock_->Advance(profile_.write_latency_ns);
    stats_.busy_ns += profile_.write_latency_ns;
    RecordMediaLocked(/*hist=*/"", "flush", 0, profile_.write_latency_ns);
  }
  return Status::Ok();
}

void BlockDevice::EnableCrashSim(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crash_sim_ && !enabled) {
    // Turning the cache off implies writing it back.
    for (const auto& [block, content] : cache_) {
      std::memcpy(durable_.data() + block * block_size(), content.data(),
                  block_size());
    }
    cache_.clear();
  }
  crash_sim_ = enabled;
}

void BlockDevice::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

void BlockDevice::CrashTorn(Rng& rng, double survive_prob) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [block, content] : cache_) {
    if (rng.NextDouble() < survive_prob) {
      std::memcpy(durable_.data() + block * block_size(), content.data(),
                  block_size());
    }
  }
  cache_.clear();
}

void BlockDevice::FailAfterWrites(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  writes_until_fault_ = n;
}

void BlockDevice::FailReads(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_reads_ = enabled;
}

size_t BlockDevice::DirtyBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

DeviceStats BlockDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BlockDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
}

}  // namespace mux::device
