// Simulated byte-addressable persistent memory.
//
// Load/Store move bytes at cache-line granularity cost; Persist models
// CLWB + SFENCE making stored lines durable. DaxBase() exposes the backing
// memory directly — the DAX path NOVA-like file systems and Mux's SCM cache
// use for zero-copy access (reads through DAX still charge media latency via
// ChargeDaxRead, mirroring how real PM loads stall the CPU).
//
// Crash simulation: stores record a pre-image per 256-byte line until the
// line is persisted; Crash() rolls unpersisted lines back. This models the
// visibility/durability gap that NOVA's persist barriers exist to close.
#ifndef MUX_DEVICE_PM_DEVICE_H_
#define MUX_DEVICE_PM_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/device/block_device.h"
#include "src/device/device_profile.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mux::device {

class PmDevice {
 public:
  static constexpr uint64_t kLineSize = 256;  // Optane media access size

  PmDevice(DeviceProfile profile, SimClock* clock);

  PmDevice(const PmDevice&) = delete;
  PmDevice& operator=(const PmDevice&) = delete;

  const DeviceProfile& profile() const { return profile_; }
  uint64_t capacity() const { return profile_.capacity_bytes; }

  Status Load(uint64_t offset, uint64_t n, uint8_t* out);
  Status Store(uint64_t offset, uint64_t n, const uint8_t* data);
  // Makes [offset, offset+n) durable (CLWB of the covered lines + fence).
  Status Persist(uint64_t offset, uint64_t n);

  // Direct access to the backing memory. Callers that read through this
  // pointer should call ChargeDaxRead to account media time.
  uint8_t* DaxBase() { return memory_.data(); }
  const uint8_t* DaxBase() const { return memory_.data(); }
  void ChargeDaxRead(uint64_t bytes);
  void ChargeDaxWrite(uint64_t bytes);

  // --- Crash simulation -----------------------------------------------
  void EnableCrashSim(bool enabled);
  // Rolls back every store that was not followed by a Persist.
  void Crash();
  size_t UnpersistedLines() const;
  // Fault injection: the next `n` Store operations succeed, then every
  // Store and Persist fails with kIoError until cleared with a negative
  // value. Sweeping the cutoff visits every possible power-loss point of a
  // multi-store PM update.
  void FailAfterStores(int64_t n);

  DeviceStats stats() const;
  void ResetStats();

  // Publishes per-op media time into the shared observability sinks (both
  // optional): counter "device.<label>.media_ns", histograms
  // "device.<label>.{read,write}_ns", and trace events (layer "device").
  void AttachObs(obs::MetricsRegistry* metrics, obs::TraceBuffer* trace,
                 std::string label);

 private:
  Status CheckRange(uint64_t offset, uint64_t n) const;
  // Records one media operation of `cost` ns that just finished (mu_ held).
  void RecordMediaLocked(const std::string& hist, const char* op,
                         uint64_t bytes, uint64_t cost);

  const DeviceProfile profile_;
  SimClock* const clock_;

  mutable std::mutex mu_;
  std::vector<uint8_t> memory_;
  // line index -> pre-image of the line before the first unpersisted store.
  std::unordered_map<uint64_t, std::vector<uint8_t>> preimages_;
  bool crash_sim_ = false;
  int64_t stores_until_fault_ = -1;  // <0 means no fault injection
  DeviceStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;  // not owned
  obs::TraceBuffer* trace_ = nullptr;        // not owned
  std::string obs_label_;
  std::string obs_media_counter_;  // precomputed metric names (hot path)
  std::string obs_read_hist_;
  std::string obs_write_hist_;
};

}  // namespace mux::device

#endif  // MUX_DEVICE_PM_DEVICE_H_
