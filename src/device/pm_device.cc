#include "src/device/pm_device.h"

#include <cstring>
#include <utility>

namespace mux::device {

PmDevice::PmDevice(DeviceProfile profile, SimClock* clock)
    : profile_(std::move(profile)), clock_(clock) {
  memory_.resize(profile_.capacity_bytes, 0);
}

Status PmDevice::CheckRange(uint64_t offset, uint64_t n) const {
  if (offset + n > capacity() || offset + n < offset) {
    return OutOfRangeError("PM access beyond capacity");
  }
  return Status::Ok();
}

Status PmDevice::Load(uint64_t offset, uint64_t n, uint8_t* out) {
  MUX_RETURN_IF_ERROR(CheckRange(offset, n));
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t cost = profile_.EstimateReadNs(n);
  clock_->Advance(cost);
  stats_.busy_ns += cost;
  stats_.read_ops++;
  stats_.bytes_read += n;
  RecordMediaLocked(obs_read_hist_, "load", n, cost);
  std::memcpy(out, memory_.data() + offset, n);
  return Status::Ok();
}

Status PmDevice::Store(uint64_t offset, uint64_t n, const uint8_t* data) {
  MUX_RETURN_IF_ERROR(CheckRange(offset, n));
  std::lock_guard<std::mutex> lock(mu_);
  if (stores_until_fault_ >= 0) {
    if (stores_until_fault_ == 0) {
      return IoError("injected PM store fault");
    }
    stores_until_fault_--;
  }
  const uint64_t cost = profile_.EstimateWriteNs(n);
  clock_->Advance(cost);
  stats_.busy_ns += cost;
  stats_.write_ops++;
  stats_.bytes_written += n;
  RecordMediaLocked(obs_write_hist_, "store", n, cost);
  if (crash_sim_) {
    const uint64_t first = offset / kLineSize;
    const uint64_t last = (offset + n - 1) / kLineSize;
    for (uint64_t line = first; line <= last; ++line) {
      if (!preimages_.contains(line)) {
        const uint64_t base = line * kLineSize;
        const uint64_t len = std::min(kLineSize, capacity() - base);
        preimages_.emplace(
            line, std::vector<uint8_t>(memory_.begin() + base,
                                       memory_.begin() + base + len));
      }
    }
  }
  std::memcpy(memory_.data() + offset, data, n);
  return Status::Ok();
}

Status PmDevice::Persist(uint64_t offset, uint64_t n) {
  if (n == 0) {
    return Status::Ok();
  }
  MUX_RETURN_IF_ERROR(CheckRange(offset, n));
  std::lock_guard<std::mutex> lock(mu_);
  if (stores_until_fault_ == 0) {
    return IoError("injected PM persist fault");
  }
  const uint64_t first = offset / kLineSize;
  const uint64_t last = (offset + n - 1) / kLineSize;
  const uint64_t lines = last - first + 1;
  const uint64_t cost = profile_.persist_latency_ns * lines;
  clock_->Advance(cost);
  stats_.busy_ns += cost;
  stats_.flushes++;
  RecordMediaLocked(/*hist=*/"", "persist", n, cost);
  if (crash_sim_) {
    for (uint64_t line = first; line <= last; ++line) {
      preimages_.erase(line);
    }
  }
  return Status::Ok();
}

void PmDevice::ChargeDaxRead(uint64_t bytes) {
  const uint64_t cost = profile_.EstimateReadNs(bytes);
  clock_->Advance(cost);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.busy_ns += cost;
  stats_.read_ops++;
  stats_.bytes_read += bytes;
  RecordMediaLocked(obs_read_hist_, "dax_read", bytes, cost);
}

void PmDevice::ChargeDaxWrite(uint64_t bytes) {
  const uint64_t cost = profile_.EstimateWriteNs(bytes);
  clock_->Advance(cost);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.busy_ns += cost;
  stats_.write_ops++;
  stats_.bytes_written += bytes;
  RecordMediaLocked(obs_write_hist_, "dax_write", bytes, cost);
}

void PmDevice::AttachObs(obs::MetricsRegistry* metrics,
                         obs::TraceBuffer* trace, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  trace_ = trace;
  obs_label_ = std::move(label);
  obs_media_counter_ = "device." + obs_label_ + ".media_ns";
  obs_read_hist_ = "device." + obs_label_ + ".read_ns";
  obs_write_hist_ = "device." + obs_label_ + ".write_ns";
}

void PmDevice::RecordMediaLocked(const std::string& hist, const char* op,
                                 uint64_t bytes, uint64_t cost) {
  if (metrics_ != nullptr) {
    metrics_->Add(obs_media_counter_, cost);
    if (!hist.empty()) {
      metrics_->Observe(hist, cost);
    }
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.layer = "device";
    event.op = obs_label_ + "." + op;
    event.bytes = bytes;
    event.duration_ns = cost;
    event.start_ns = clock_->Now() - cost;
    trace_->Record(std::move(event));
  }
}

void PmDevice::FailAfterStores(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stores_until_fault_ = n;
}

void PmDevice::EnableCrashSim(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_sim_ = enabled;
  if (!enabled) {
    preimages_.clear();
  }
}

void PmDevice::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [line, preimage] : preimages_) {
    std::memcpy(memory_.data() + line * kLineSize, preimage.data(),
                preimage.size());
  }
  preimages_.clear();
}

size_t PmDevice::UnpersistedLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return preimages_.size();
}

DeviceStats PmDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PmDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
}

}  // namespace mux::device
