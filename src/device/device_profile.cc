#include "src/device/device_profile.h"

namespace mux::device {

std::string_view DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kPm:
      return "PM";
    case DeviceKind::kSsd:
      return "SSD";
    case DeviceKind::kHdd:
      return "HDD";
    case DeviceKind::kGeneric:
      return "RAM";
  }
  return "?";
}

uint64_t DeviceProfile::EstimateReadNs(uint64_t bytes) const {
  return read_latency_ns +
         static_cast<uint64_t>(static_cast<double>(bytes) / read_bw_bytes_per_ns);
}

uint64_t DeviceProfile::EstimateWriteNs(uint64_t bytes) const {
  return write_latency_ns +
         static_cast<uint64_t>(static_cast<double>(bytes) / write_bw_bytes_per_ns);
}

DeviceProfile DeviceProfile::OptanePm(uint64_t capacity_bytes) {
  DeviceProfile p;
  p.kind = DeviceKind::kPm;
  p.name = "optane-pmem-200";
  p.capacity_bytes = capacity_bytes;
  p.block_size = 4096;  // PM file systems still allocate in 4K pages.
  p.read_latency_ns = 170;          // media read latency (first access)
  p.write_latency_ns = 90;          // store into WPQ
  p.read_bw_bytes_per_ns = 6.6;     // ~6.6 GB/s per DIMM set
  p.write_bw_bytes_per_ns = 2.3;    // ~2.3 GB/s
  p.persist_latency_ns = 100;       // CLWB + fence amortized per line
  p.byte_addressable = true;
  p.queue_depth = 8;
  return p;
}

DeviceProfile DeviceProfile::OptaneSsd(uint64_t capacity_bytes) {
  DeviceProfile p;
  p.kind = DeviceKind::kSsd;
  p.name = "optane-ssd-p4800x";
  p.capacity_bytes = capacity_bytes;
  p.block_size = 4096;
  p.read_latency_ns = 10'000;       // ~10us
  p.write_latency_ns = 10'000;
  p.read_bw_bytes_per_ns = 2.4;     // 2.4 GB/s
  p.write_bw_bytes_per_ns = 2.0;    // 2.0 GB/s
  p.byte_addressable = false;
  p.queue_depth = 16;
  return p;
}

DeviceProfile DeviceProfile::ExosHdd(uint64_t capacity_bytes) {
  DeviceProfile p;
  p.kind = DeviceKind::kHdd;
  p.name = "exos-x18";
  p.capacity_bytes = capacity_bytes;
  p.block_size = 4096;
  p.read_latency_ns = 2'000'000;    // ~half a rotation at 7200rpm
  p.write_latency_ns = 2'000'000;
  p.read_bw_bytes_per_ns = 0.27;    // 270 MB/s sustained
  p.write_bw_bytes_per_ns = 0.27;
  p.full_seek_ns = 8'000'000;       // 8ms full stroke
  p.byte_addressable = false;
  p.queue_depth = 1;
  return p;
}

DeviceProfile DeviceProfile::TestRam(uint64_t capacity_bytes) {
  DeviceProfile p;
  p.kind = DeviceKind::kGeneric;
  p.name = "test-ram";
  p.capacity_bytes = capacity_bytes;
  p.block_size = 4096;
  p.read_bw_bytes_per_ns = 1000.0;
  p.write_bw_bytes_per_ns = 1000.0;
  p.byte_addressable = true;
  p.queue_depth = 32;
  return p;
}

}  // namespace mux::device
