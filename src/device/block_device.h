// Simulated block device with a volatile write cache and crash injection.
//
// The device is memory-backed. Every operation charges simulated time to the
// shared SimClock according to the DeviceProfile: fixed per-op latency, a
// bandwidth term, and (for HDDs) a seek cost proportional to LBA distance
// from the previous access.
//
// Crash simulation: with EnableCrashSim(true), writes land in a volatile
// overlay (the "disk write cache"); Flush() makes them durable. Crash()
// discards the overlay — or, with CrashTorn(), makes an arbitrary subset
// durable first, modelling reordered cache writeback. File-system recovery
// tests are built on this.
#ifndef MUX_DEVICE_BLOCK_DEVICE_H_
#define MUX_DEVICE_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/device/device_profile.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mux::device {

struct DeviceStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t flushes = 0;
  uint64_t seeks = 0;
  SimTime busy_ns = 0;
};

class BlockDevice {
 public:
  BlockDevice(DeviceProfile profile, SimClock* clock);

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  const DeviceProfile& profile() const { return profile_; }
  uint32_t block_size() const { return profile_.block_size; }
  uint64_t capacity_blocks() const { return profile_.capacity_blocks(); }

  // Transfers `count` blocks starting at `lba`. `out`/`data` must hold
  // count * block_size bytes.
  Status ReadBlocks(uint64_t lba, uint32_t count, uint8_t* out);
  Status WriteBlocks(uint64_t lba, uint32_t count, const uint8_t* data);

  // Completion-callback transfer API for the submission/completion I/O core:
  // the operation runs on the calling thread under a private time cursor
  // anchored at `origin` (the submitter's clock value), so its simulated
  // media charge stays off the shared clock; `done(status, service_ns)` is
  // invoked exactly once with the outcome and the chain's private charge.
  // The awaiting op merges the charge itself (typically via a
  // CompletionGroup max-join), which is what lets concurrent transfers on
  // independent devices overlap instead of summing.
  using IoDoneFn = std::function<void(const Status&, SimTime service_ns)>;
  void SubmitRead(uint64_t lba, uint32_t count, uint8_t* out, SimTime origin,
                  IoDoneFn done);
  void SubmitWrite(uint64_t lba, uint32_t count, const uint8_t* data,
                   SimTime origin, IoDoneFn done);

  // Makes all cached writes durable.
  Status Flush();

  // --- Crash simulation -----------------------------------------------
  void EnableCrashSim(bool enabled);
  bool crash_sim_enabled() const { return crash_sim_; }
  // Power loss: unflushed writes are gone.
  void Crash();
  // Power loss with partial writeback: each cached block independently
  // becomes durable with probability `survive_prob`.
  void CrashTorn(Rng& rng, double survive_prob);
  // Number of blocks currently sitting in the volatile cache.
  size_t DirtyBlocks() const;

  // Fault injection: the next `n` write operations succeed, then every
  // write (and flush) fails with kIoError until the limit is cleared with a
  // negative value. Combined with Crash(), this produces every possible
  // mid-operation power-loss point for recovery tests.
  void FailAfterWrites(int64_t n);
  // Fault injection: every read fails with kIoError while enabled (a dead
  // device; used by the replication failover tests).
  void FailReads(bool enabled);

  DeviceStats stats() const;
  void ResetStats();

  // Publishes per-op media time into the shared observability sinks (both
  // optional): counter "device.<label>.media_ns", histograms
  // "device.<label>.{read,write}_ns", and trace events (layer "device").
  void AttachObs(obs::MetricsRegistry* metrics, obs::TraceBuffer* trace,
                 std::string label);

 private:
  uint64_t SeekCost(uint64_t lba) const;
  Status CheckRange(uint64_t lba, uint32_t count) const;
  // Records one media operation of `cost` ns that just finished (mu_ held).
  void RecordMediaLocked(const std::string& hist, const char* op,
                         uint64_t bytes, uint64_t cost);

  const DeviceProfile profile_;
  SimClock* const clock_;

  mutable std::mutex mu_;
  std::vector<uint8_t> durable_;
  // Volatile write cache: lba -> block content not yet durable.
  std::unordered_map<uint64_t, std::vector<uint8_t>> cache_;
  bool crash_sim_ = false;
  bool fail_reads_ = false;
  int64_t writes_until_fault_ = -1;  // <0 means no fault injection
  uint64_t last_lba_ = 0;            // head position for the seek model
  DeviceStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;  // not owned
  obs::TraceBuffer* trace_ = nullptr;        // not owned
  std::string obs_label_;
  std::string obs_media_counter_;  // precomputed metric names (hot path)
  std::string obs_read_hist_;
  std::string obs_write_hist_;
};

}  // namespace mux::device

#endif  // MUX_DEVICE_BLOCK_DEVICE_H_
