#include "src/obs/metrics.h"

#include <cstdio>
#include <fstream>

namespace mux::obs {

void MetricsRegistry::Add(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::Observe(std::string_view name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  it->second.Add(value);
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram MetricsRegistry::HistogramValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram() : it->second;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, Histogram>> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.1f,"
                  "\"p50\":%.0f,\"p90\":%.0f,\"p99\":%.0f}",
                  static_cast<unsigned long long>(hist.count()),
                  static_cast<unsigned long long>(hist.min()),
                  static_cast<unsigned long long>(hist.max()), hist.Mean(),
                  hist.Percentile(50), hist.Percentile(90),
                  hist.Percentile(99));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::DumpToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return IoError("cannot open metrics dump file: " + path);
  }
  out << ToJson() << '\n';
  out.flush();
  if (!out) {
    return IoError("short write to metrics dump file: " + path);
  }
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

SimTime ScopedTimer::Stop() {
  if (stopped_ || clock_ == nullptr) {
    return 0;
  }
  stopped_ = true;
  const SimTime elapsed = clock_->Now() - start_;
  if (registry_ != nullptr) {
    registry_->Observe(name_, elapsed);
  }
  return elapsed;
}

}  // namespace mux::obs
