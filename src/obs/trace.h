// Observability: bounded per-op trace ring buffer.
//
// Layers record one TraceEvent per operation (layer, op, tier, bytes,
// start/duration in simulated ns). The buffer keeps the most recent
// `capacity` events and counts what it overwrote, so a long benchmark can
// still be inspected at the tail without unbounded memory. Events from
// nested layers interleave in clock order: a Mux read's event brackets the
// device events it caused, which is how a single request's latency is
// attributed across software and media (DESIGN.md "Observability").
#ifndef MUX_OBS_TRACE_H_
#define MUX_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace mux::obs {

struct TraceEvent {
  std::string layer;  // "vfs", "mux", "sched", "cache", "device"
  std::string op;     // e.g. "read", "write", "migrate", "pm.read"
  uint32_t tier = UINT32_MAX;  // TierId when known, UINT32_MAX otherwise
  uint64_t bytes = 0;
  SimTime start_ns = 0;
  SimTime duration_ns = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : capacity_(capacity) {}
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(TraceEvent event);

  // Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t capacity() const { return capacity_; }
  // Total events ever recorded / overwritten by the ring.
  uint64_t recorded() const;
  uint64_t dropped() const;

  // {"capacity":N,"recorded":N,"dropped":N,"events":[{...},...]}
  std::string ToJson() const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  // index of the oldest event once the ring is full
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace mux::obs

#endif  // MUX_OBS_TRACE_H_
