// Per-phase latency attribution for queued operations.
//
// An open-loop client observes one number — total latency from the moment an
// op was *scheduled* to arrive until it completed — but that number conflates
// two very different failure modes: the op waited in a queue (the system is
// saturated; add capacity or shed load) versus the op was slow to execute
// (the data path itself regressed; look at tier placement, lock contention,
// migration interference). PhaseRecorder splits the timeline at the moment a
// worker dequeued the op:
//
//   arrival_ns     when the op was scheduled to arrive (open-loop schedule,
//                  not when the producer managed to enqueue it — measuring
//                  from enqueue would hide coordinated omission)
//   dispatch_ns    when a worker picked it up
//   completion_ns  when the op finished
//
// and publishes three histograms into a MetricsRegistry:
//
//   <prefix>.queue_ns    dispatch - arrival   (queueing delay)
//   <prefix>.service_ns  completion - dispatch (service time)
//   <prefix>.total_ns    completion - arrival  (what the client saw)
//
// The registry is the same sink the Mux data path and devices feed, so a
// metrics dump shows client-visible latency decomposed next to media time
// and software charges.
#ifndef MUX_OBS_PHASE_H_
#define MUX_OBS_PHASE_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace mux::obs {

// One op's timeline, in any monotonic nanosecond timebase (wall clock for
// the traffic engine; SimClock for simulated paths). Clamped subtraction
// guards the arrival > dispatch case (an op executed before its scheduled
// arrival never happens by construction, but a merged/retimed recording
// should not underflow).
struct OpPhases {
  uint64_t arrival_ns = 0;
  uint64_t dispatch_ns = 0;
  uint64_t completion_ns = 0;

  uint64_t QueueNs() const {
    return dispatch_ns > arrival_ns ? dispatch_ns - arrival_ns : 0;
  }
  uint64_t ServiceNs() const {
    return completion_ns > dispatch_ns ? completion_ns - dispatch_ns : 0;
  }
  uint64_t TotalNs() const {
    return completion_ns > arrival_ns ? completion_ns - arrival_ns : 0;
  }
};

class PhaseRecorder {
 public:
  // Histogram names are materialised once here; Record() itself does not
  // allocate (MetricsRegistry looks up string_views transparently).
  PhaseRecorder(MetricsRegistry* registry, std::string_view prefix)
      : registry_(registry),
        queue_name_(std::string(prefix) + ".queue_ns"),
        service_name_(std::string(prefix) + ".service_ns"),
        total_name_(std::string(prefix) + ".total_ns") {}

  void Record(const OpPhases& phases) const {
    if (registry_ == nullptr) {
      return;
    }
    registry_->Observe(queue_name_, phases.QueueNs());
    registry_->Observe(service_name_, phases.ServiceNs());
    registry_->Observe(total_name_, phases.TotalNs());
  }

  const std::string& queue_name() const { return queue_name_; }
  const std::string& service_name() const { return service_name_; }
  const std::string& total_name() const { return total_name_; }

 private:
  MetricsRegistry* registry_;
  std::string queue_name_;
  std::string service_name_;
  std::string total_name_;
};

}  // namespace mux::obs

#endif  // MUX_OBS_PHASE_H_
