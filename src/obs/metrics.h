// Observability: the metrics registry (§3.2 measurement substrate).
//
// Every layer of the stack — Vfs, Mux, the I/O scheduler, the SCM cache
// controller, and the simulated devices — records into one shared
// MetricsRegistry: named monotonic counters (e.g. per-device media
// nanoseconds) and named Histogram-backed latency distributions (e.g.
// per-op end-to-end latency). Because all latencies are simulated time on
// the shared SimClock, a request's total latency decomposes exactly into
// software time (Mux/FS bookkeeping charged by the cost model) and media
// time (what the devices charged) — the split the paper's §3.2 overhead
// table is built on.
//
// Conventions used across the stack (see DESIGN.md "Observability"):
//   device.<label>.media_ns   counter: simulated ns the device was busy
//   device.<label>.read_ns    histogram: per-read media service time
//   mux.sw.total_ns           counter: all Mux cost-model CPU charges
//   mux.sw.<step>_ns          counter: one cost-model step (dispatch, blt…)
//   mux.<op>.latency_ns       histogram: end-to-end op latency through Mux
//   sched.queue_wait_ns       histogram: submit -> dispatch wait
//   sched.service_ns          histogram: dispatch -> completion
//   sched.parallel_drain.rounds    counter: parallel RunAll drain rounds
//   sched.parallel_drain.tiers     counter: tier drain threads spawned
//   sched.parallel_drain.{max,sum}_ns  histograms: per-round drain time,
//                             slowest tier vs sum over tiers (overlap win)
//   sched.qdepth.<queue>      histogram: submission-ring occupancy at submit
//   sched.qdepth.wait_ns      histogram: simulated wait for a free device
//                             channel (where DeviceProfile::queue_depth bites)
//   sched.completion_wait_ns  histogram: wall ns a completion waited for its
//                             continuation to run (dispatch lag, not sim time)
//   sched.async_drain.rounds  counter: async RunAll drain rounds
//   sched.async_drain.requests counter: requests submitted through the rings
//   sched.async_drain.{max,sum}_ns  histograms: per-round completion horizon
//                             (max over ok completions) vs sum of services
//   cache.{hit,miss,admission}_ns  histograms: SCM cache path latency
//   cache.agg.flushes         counter: aggregation-buffer bulk flushes
//   cache.agg.bytes           counter: bytes those flushes wrote as single
//                             sequential DAX writes (bytes/flushes >> 4 KiB
//                             ⇒ admission write coalescing is working)
//   cache.agg.staged_hits     counter: reads served from the aggregation
//                             buffer before its flush
//   cache.agg.cancelled       counter: staged blocks invalidated/evicted
//                             before their flush
//   cache.sketch.decays       counter: admission-sketch halving-decay passes
//   mux.parallel.fanouts      counter: split requests dispatched in parallel
//   mux.parallel.segments     counter: segments across those fanouts
//   mux.parallel.chain_{max,sum}_ns  counters: per-tier chain time charged
//                             (max) vs what serial dispatch would have (sum)
//   mux.cache.missed_blocks   counter: SCM-cache miss blocks fetched
//   mux.cache.coalesced_reads counter: tier reads issued for those blocks
//                             (< missed_blocks ⇒ adjacent misses coalesced)
#ifndef MUX_OBS_METRICS_H_
#define MUX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/status.h"

namespace mux::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Adds `delta` to the named counter (created at zero on first use).
  void Add(std::string_view name, uint64_t delta);
  void Increment(std::string_view name) { Add(name, 1); }

  // Records one sample into the named latency histogram.
  void Observe(std::string_view name, uint64_t value);

  // Current counter value; 0 if the counter was never touched.
  uint64_t CounterValue(std::string_view name) const;
  // Snapshot of the named histogram; empty histogram if never observed.
  Histogram HistogramValue(std::string_view name) const;

  // Sorted snapshots for reports.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, Histogram>> Histograms() const;

  // JSON text export:
  //   {"counters":{...},"histograms":{"name":{"count":..,"min":..,"max":..,
  //    "mean":..,"p50":..,"p90":..,"p99":..},...}}
  std::string ToJson() const;
  // Writes ToJson() to a host file (real filesystem, not simulated).
  Status DumpToFile(const std::string& path) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Measures simulated elapsed time from construction until Stop()/destruction
// and observes it into `name`. A null registry makes it a no-op, so call
// sites need no branching.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, const SimClock* clock,
              std::string_view name)
      : registry_(registry), clock_(clock), name_(name),
        start_(clock == nullptr ? 0 : clock->Now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { Stop(); }

  // Records now - start (idempotent) and returns the elapsed time.
  SimTime Stop();

 private:
  MetricsRegistry* const registry_;
  const SimClock* const clock_;
  const std::string_view name_;
  const SimTime start_;
  bool stopped_ = false;
};

}  // namespace mux::obs

#endif  // MUX_OBS_METRICS_H_
