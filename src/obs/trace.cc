#include "src/obs/trace.h"

#include <cstdio>
#include <utility>

namespace mux::obs {

void TraceBuffer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    dropped_++;
    recorded_++;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    dropped_++;
  }
  recorded_++;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceBuffer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceBuffer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"capacity\":%llu,\"recorded\":%llu,\"dropped\":%llu,"
                "\"events\":[",
                static_cast<unsigned long long>(capacity_),
                static_cast<unsigned long long>(recorded_),
                static_cast<unsigned long long>(dropped_));
  std::string out = buf;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = ring_[(head_ + i) % ring_.size()];
    if (i > 0) {
      out += ',';
    }
    std::snprintf(buf, sizeof(buf),
                  "\",\"tier\":%lld,\"bytes\":%llu,\"start_ns\":%llu,"
                  "\"dur_ns\":%llu}",
                  e.tier == UINT32_MAX
                      ? -1LL
                      : static_cast<long long>(e.tier),
                  static_cast<unsigned long long>(e.bytes),
                  static_cast<unsigned long long>(e.start_ns),
                  static_cast<unsigned long long>(e.duration_ns));
    out += "{\"layer\":\"";
    out += e.layer;
    out += "\",\"op\":\"";
    out += e.op;
    out += buf;
  }
  out += "]}";
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace mux::obs
