#include "src/fs/fscommon/journal.h"

#include <cstring>

#include "src/common/checksum.h"
#include "src/common/encoding.h"
#include "src/common/logging.h"

namespace mux::fs {

// Block layouts (little endian, block_size bytes, zero padded):
//   superblock: magic(4) type(4) tail_seq(8) crc(4)
//       tail_seq = sequence number of the first transaction that might need
//       replay; everything below it has been checkpointed.
//   descriptor: magic(4) type(4) seq(8) count(4) crc(4) revoke_count(4)
//       targets(count * 8) revoked(revoke_count * 8)
//       followed by `count` raw data blocks in journal order
//   commit:     magic(4) type(4) seq(8) count(4) crc(4)
//       where crc covers targets + revoked + all data block contents
namespace {
constexpr size_t kHdrMagic = 0;
constexpr size_t kHdrType = 4;
constexpr size_t kHdrSeq = 8;
constexpr size_t kHdrCount = 16;
constexpr size_t kHdrCrc = 20;
constexpr size_t kHdrRevokes = 24;
constexpr size_t kHdrEnd = 28;
}  // namespace

void Journal::Tx::LogBlock(uint64_t home_block, const uint8_t* data,
                           uint32_t len) {
  auto& slot = blocks_[home_block];
  slot.assign(data, data + len);
}

Journal::Journal(device::BlockDevice* device, uint64_t start_block,
                 uint64_t num_blocks)
    : device_(device),
      start_block_(start_block),
      num_blocks_(num_blocks),
      block_size_(device->block_size()) {
  MUX_CHECK(num_blocks >= 4) << "journal too small: " << num_blocks;
}

Status Journal::WriteSuperblockLocked() {
  std::vector<uint8_t> block(block_size_, 0);
  Put32(block.data() + kHdrMagic, kMagic);
  Put32(block.data() + kHdrType, kSuperblock);
  Put64(block.data() + kHdrSeq, next_seq_);
  Put32(block.data() + kHdrCrc, Crc32c(block.data(), kHdrCrc));
  MUX_RETURN_IF_ERROR(device_->WriteBlocks(start_block_, 1, block.data()));
  return device_->Flush();
}

Status Journal::ReadSuperblockLocked(uint64_t* next_seq) {
  std::vector<uint8_t> block(block_size_, 0);
  MUX_RETURN_IF_ERROR(device_->ReadBlocks(start_block_, 1, block.data()));
  if (Get32(block.data() + kHdrMagic) != kMagic ||
      Get32(block.data() + kHdrType) != kSuperblock) {
    return CorruptionError("journal superblock missing");
  }
  if (Get32(block.data() + kHdrCrc) != Crc32c(block.data(), kHdrCrc)) {
    return CorruptionError("journal superblock checksum mismatch");
  }
  *next_seq = Get64(block.data() + kHdrSeq);
  return Status::Ok();
}

Status Journal::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = 1;
  head_ = 1;
  pending_home_.clear();
  return WriteSuperblockLocked();
}

Status Journal::CheckpointLocked() {
  if (pending_home_.empty()) {
    head_ = 1;
    return Status::Ok();
  }
  // Batched, block-sorted home writes (pending_home_ is an ordered map), so
  // on a disk the checkpoint sweeps the platter once instead of seeking per
  // commit. Contiguous runs go out as single writes.
  auto it = pending_home_.begin();
  std::vector<uint8_t> buf;
  while (it != pending_home_.end()) {
    const uint64_t first = it->first;
    buf.assign(it->second.begin(), it->second.end());
    buf.resize(block_size_, 0);
    auto next = std::next(it);
    uint64_t run = 1;
    while (next != pending_home_.end() && next->first == first + run) {
      const size_t old_size = buf.size();
      buf.resize(old_size + block_size_, 0);
      std::memcpy(buf.data() + old_size, next->second.data(),
                  std::min<size_t>(next->second.size(), block_size_));
      ++run;
      ++next;
    }
    MUX_RETURN_IF_ERROR(device_->WriteBlocks(
        first, static_cast<uint32_t>(run), buf.data()));
    stats_.checkpointed_blocks += run;
    it = next;
  }
  MUX_RETURN_IF_ERROR(device_->Flush());
  pending_home_.clear();
  head_ = 1;
  stats_.checkpoints++;
  // Retire the replayed window: recovery starts at next_seq_ from now on.
  return WriteSuperblockLocked();
}

Status Journal::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status Journal::AppendTxLocked(
    const std::map<uint64_t, std::vector<uint8_t>>& blocks,
    const std::vector<uint64_t>& revokes) {
  const uint64_t count = blocks.size();
  const uint64_t revoke_count = revokes.size();
  if (kHdrEnd + (count + revoke_count) * 8 > block_size_) {
    return InternalError("descriptor overflow (caller must split)");
  }
  // Out of journal area? Drain it first.
  if (head_ + count + 2 > num_blocks_) {
    MUX_RETURN_IF_ERROR(CheckpointLocked());
  }

  // 1. Descriptor + data blocks, appended at the head.
  std::vector<uint8_t> descriptor(block_size_, 0);
  Put32(descriptor.data() + kHdrMagic, kMagic);
  Put32(descriptor.data() + kHdrType, kDescriptor);
  Put64(descriptor.data() + kHdrSeq, next_seq_);
  Put32(descriptor.data() + kHdrCount, static_cast<uint32_t>(count));
  Put32(descriptor.data() + kHdrRevokes, static_cast<uint32_t>(revoke_count));
  size_t pos = kHdrEnd;
  for (const auto& [home, data] : blocks) {
    Put64(descriptor.data() + pos, home);
    pos += 8;
  }
  for (uint64_t revoked : revokes) {
    Put64(descriptor.data() + pos, revoked);
    pos += 8;
  }
  uint32_t crc = Crc32c(descriptor.data() + kHdrEnd,
                        (count + revoke_count) * 8, 0);

  uint64_t journal_block = start_block_ + head_;
  MUX_RETURN_IF_ERROR(
      device_->WriteBlocks(journal_block, 1, descriptor.data()));
  journal_block++;

  std::vector<uint8_t> padded(block_size_, 0);
  for (const auto& [home, data] : blocks) {
    std::memset(padded.data(), 0, block_size_);
    std::memcpy(padded.data(), data.data(),
                std::min<size_t>(data.size(), block_size_));
    crc = Crc32c(padded.data(), block_size_, crc);
    MUX_RETURN_IF_ERROR(device_->WriteBlocks(journal_block, 1, padded.data()));
    journal_block++;
  }
  // Barrier: the transaction body must be durable before the commit record.
  MUX_RETURN_IF_ERROR(device_->Flush());

  // 2. Commit block.
  std::vector<uint8_t> commit(block_size_, 0);
  Put32(commit.data() + kHdrMagic, kMagic);
  Put32(commit.data() + kHdrType, kCommit);
  Put64(commit.data() + kHdrSeq, next_seq_);
  Put32(commit.data() + kHdrCount, static_cast<uint32_t>(count));
  Put32(commit.data() + kHdrCrc, crc);
  MUX_RETURN_IF_ERROR(device_->WriteBlocks(journal_block, 1, commit.data()));
  MUX_RETURN_IF_ERROR(device_->Flush());

  // 3. Absorb into the pending checkpoint set (newest wins per home block;
  //    revoked blocks must never be checkpointed).
  for (const auto& [home, data] : blocks) {
    pending_home_[home] = data;
  }
  for (uint64_t revoked : revokes) {
    pending_home_.erase(revoked);
  }
  head_ += count + 2;
  next_seq_++;
  stats_.commits++;
  stats_.blocks_logged += count;
  return Status::Ok();
}

Status Journal::Commit(std::unique_ptr<Tx> tx) {
  if (tx == nullptr || (tx->blocks_.empty() && tx->revokes_.empty())) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A block both re-logged and revoked in one transaction was freed and
  // reused as metadata again: the new journaled content wins.
  for (const auto& [home, data] : tx->blocks_) {
    tx->revokes_.erase(home);
  }
  const uint64_t count = tx->blocks_.size();
  if (count > MaxTxBlocks()) {
    return NoSpaceError("transaction exceeds journal capacity");
  }
  const size_t slots = (block_size_ - kHdrEnd) / 8;
  if (count > slots) {
    return NoSpaceError("too many blocks for one descriptor");
  }
  // Oversized revoke sets spill into preliminary revoke-only transactions.
  std::vector<uint64_t> revokes(tx->revokes_.begin(), tx->revokes_.end());
  while (count + revokes.size() > slots) {
    const size_t spill = std::min(revokes.size(), slots);
    std::vector<uint64_t> batch(revokes.end() - spill, revokes.end());
    revokes.resize(revokes.size() - spill);
    MUX_RETURN_IF_ERROR(AppendTxLocked({}, batch));
  }
  return AppendTxLocked(tx->blocks_, revokes);
}

Status Journal::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t expected_seq = 0;
  MUX_RETURN_IF_ERROR(ReadSuperblockLocked(&expected_seq));

  // Scan forward from the start of the journal area, collecting consecutive
  // committed transactions with the expected sequence numbers.
  struct ReplayTx {
    uint64_t seq = 0;
    std::vector<uint64_t> homes;
    std::vector<std::vector<uint8_t>> contents;
  };
  std::vector<ReplayTx> replay;
  std::map<uint64_t, uint64_t> revoked_at;  // home block -> latest revoke seq
  uint64_t scan = 1;
  std::vector<uint8_t> descriptor(block_size_, 0);
  std::vector<uint8_t> commit(block_size_, 0);
  while (scan + 1 <= num_blocks_) {
    MUX_RETURN_IF_ERROR(
        device_->ReadBlocks(start_block_ + scan, 1, descriptor.data()));
    const bool descriptor_ok =
        Get32(descriptor.data() + kHdrMagic) == kMagic &&
        Get32(descriptor.data() + kHdrType) == kDescriptor &&
        Get64(descriptor.data() + kHdrSeq) == expected_seq;
    if (!descriptor_ok) {
      break;
    }
    const uint32_t count = Get32(descriptor.data() + kHdrCount);
    const uint32_t revoke_count = Get32(descriptor.data() + kHdrRevokes);
    if (count > MaxTxBlocks() ||
        kHdrEnd + (static_cast<size_t>(count) + revoke_count) * 8 >
            block_size_ ||
        scan + count + 2 > num_blocks_) {
      break;  // garbage descriptor: treat as end of committed history
    }
    MUX_RETURN_IF_ERROR(device_->ReadBlocks(start_block_ + scan + count + 1,
                                            1, commit.data()));
    const bool commit_ok = Get32(commit.data() + kHdrMagic) == kMagic &&
                           Get32(commit.data() + kHdrType) == kCommit &&
                           Get64(commit.data() + kHdrSeq) == expected_seq &&
                           Get32(commit.data() + kHdrCount) == count;
    if (!commit_ok) {
      break;  // torn transaction: discard it and everything after
    }
    uint32_t crc = Crc32c(descriptor.data() + kHdrEnd,
                          (static_cast<size_t>(count) + revoke_count) * 8, 0);
    ReplayTx tx;
    tx.seq = expected_seq;
    tx.homes.reserve(count);
    tx.contents.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      tx.homes.push_back(Get64(descriptor.data() + kHdrEnd + i * 8));
      std::vector<uint8_t> content(block_size_, 0);
      MUX_RETURN_IF_ERROR(device_->ReadBlocks(start_block_ + scan + 1 + i, 1,
                                              content.data()));
      crc = Crc32c(content.data(), block_size_, crc);
      tx.contents.push_back(std::move(content));
    }
    if (crc != Get32(commit.data() + kHdrCrc)) {
      break;  // body corrupted: the commit record lies, discard
    }
    for (uint32_t r = 0; r < revoke_count; ++r) {
      const uint64_t revoked = Get64(descriptor.data() + kHdrEnd +
                                     (static_cast<size_t>(count) + r) * 8);
      revoked_at[revoked] = expected_seq;
    }
    replay.push_back(std::move(tx));
    scan += count + 2;
    expected_seq++;
  }

  // Re-apply in order (idempotent; later transactions overwrite earlier).
  // A home write is suppressed when a same-or-later revoke covers the block
  // — the block was freed and possibly reused for unjournaled data.
  for (const ReplayTx& tx : replay) {
    for (size_t i = 0; i < tx.homes.size(); ++i) {
      auto revoked = revoked_at.find(tx.homes[i]);
      if (revoked != revoked_at.end() && revoked->second >= tx.seq) {
        continue;
      }
      MUX_RETURN_IF_ERROR(
          device_->WriteBlocks(tx.homes[i], 1, tx.contents[i].data()));
    }
    stats_.replayed_txs++;
  }
  if (!replay.empty()) {
    MUX_RETURN_IF_ERROR(device_->Flush());
  }

  next_seq_ = expected_seq;
  head_ = 1;
  pending_home_.clear();
  return WriteSuperblockLocked();
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mux::fs
