// Extent-based free-space allocator (DRAM structure).
//
// Tracks free space as extents (start, length) with two indexes, the way
// XFS's per-AG bnobt/cntbt pair does: by start offset (for merge on free and
// near-target allocation) and by length (for best-fit contiguous
// allocation). novafs rebuilds one from its logs at recovery; xfslite keeps
// one per allocation group.
#ifndef MUX_FS_FSCOMMON_EXTENT_ALLOCATOR_H_
#define MUX_FS_FSCOMMON_EXTENT_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <set>

#include "src/common/result.h"
#include "src/common/status.h"

namespace mux::fs {

class ExtentAllocator {
 public:
  ExtentAllocator() = default;
  // Starts with [start, start+length) free.
  ExtentAllocator(uint64_t start, uint64_t length);

  // Allocates `count` contiguous units; best-fit by length. Returns the
  // first unit.
  Result<uint64_t> AllocContiguous(uint64_t count);
  // Allocates `count` contiguous units at or after `target` if possible,
  // falling back to best-fit anywhere (locality-seeking allocation).
  Result<uint64_t> AllocNear(uint64_t target, uint64_t count);
  // Allocates up to `count` units which need not be contiguous; returns
  // (start, len) of one extent of length <= count. Callers loop.
  Result<std::pair<uint64_t, uint64_t>> AllocUpTo(uint64_t count);

  Status Free(uint64_t start, uint64_t count);
  // Removes [start, start+count) from the free pool (used when rebuilding
  // state at recovery: mark blocks referenced by metadata as in use).
  Status Reserve(uint64_t start, uint64_t count);

  uint64_t FreeUnits() const { return free_units_; }
  // Largest single free extent (0 when empty).
  uint64_t LargestExtent() const;
  size_t FragmentCount() const { return by_start_.size(); }

 private:
  struct LenKey {
    uint64_t len;
    uint64_t start;
    bool operator<(const LenKey& other) const {
      return len != other.len ? len < other.len : start < other.start;
    }
  };

  void Insert(uint64_t start, uint64_t len);
  void Remove(uint64_t start, uint64_t len);
  // Carves [start, start+count) out of the free extent beginning at
  // `extent_start`.
  void Carve(uint64_t extent_start, uint64_t extent_len, uint64_t start,
             uint64_t count);

  std::map<uint64_t, uint64_t> by_start_;  // start -> len
  std::set<LenKey> by_len_;
  uint64_t free_units_ = 0;
};

}  // namespace mux::fs

#endif  // MUX_FS_FSCOMMON_EXTENT_ALLOCATOR_H_
