// DRAM page cache shared by the block-device file systems (xfslite, extlite).
//
// Per the paper (§2.5) each device-specific file system keeps its own DRAM
// page cache that cannot be shared across devices — one of Mux's motivations
// for adding an SCM-level shared cache above them.
//
// Pages are keyed by (inode, page index). Eviction is LRU; dirty pages are
// written back through the BackingStore the file system registers. Writeback
// order is where delayed allocation happens in xfslite: the store callback
// allocates extents at flush time.
#ifndef MUX_FS_FSCOMMON_PAGE_CACHE_H_
#define MUX_FS_FSCOMMON_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/vfs/types.h"

namespace mux::fs {

inline constexpr uint64_t kPageSize = 4096;

// How a cached page reaches and leaves the device.
class BackingStore {
 public:
  virtual ~BackingStore() = default;
  // Fills `out` (kPageSize bytes) with the page's on-device content; pages
  // never written return zeros (holes).
  virtual Status LoadPage(vfs::InodeNum ino, uint64_t page, uint8_t* out) = 0;
  // Persists a dirty page. May allocate on-device space (delayed allocation).
  virtual Status StorePage(vfs::InodeNum ino, uint64_t page,
                           const uint8_t* data) = 0;
  // Persists `count` consecutive pages ([first_page, first_page+count),
  // `data` holds count * kPageSize bytes). Clustered writeback: block-device
  // file systems override this to issue multi-block I/Os instead of paying
  // per-command latency once per page.
  virtual Status StorePages(vfs::InodeNum ino, uint64_t first_page,
                            uint64_t count, const uint8_t* data);
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

class PageCache {
 public:
  // `capacity_pages` bounds DRAM use. `hit_cost_ns` models the CPU cost of a
  // cache-hit lookup+copy and is charged to `clock`.
  PageCache(BackingStore* store, SimClock* clock, uint64_t capacity_pages,
            SimTime hit_cost_ns = 250);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Copies [offset_in_page, offset_in_page+n) of the page into `out`.
  Status ReadThrough(vfs::InodeNum ino, uint64_t page, uint64_t offset_in_page,
                     uint64_t n, uint8_t* out);
  // Updates the page in cache (loading it first for partial writes) and
  // marks it dirty.
  Status WriteThrough(vfs::InodeNum ino, uint64_t page,
                      uint64_t offset_in_page, uint64_t n,
                      const uint8_t* data);

  // Pre-populates `count` pages starting at `page` (sequential readahead).
  Status ReadAhead(vfs::InodeNum ino, uint64_t page, uint64_t count);

  // Writes back all dirty pages of one inode / all inodes.
  Status FlushInode(vfs::InodeNum ino);
  Status FlushAll();
  // Drops all pages of an inode (after truncate/unlink). Dirty pages are
  // discarded — callers flush first if the data must survive.
  void InvalidateInode(vfs::InodeNum ino);
  // Drops pages at and after `first_page` (for truncate).
  void InvalidateFrom(vfs::InodeNum ino, uint64_t first_page);
  // Drops pages in [first_page, first_page + count) (for hole punching).
  void InvalidateRange(vfs::InodeNum ino, uint64_t first_page,
                       uint64_t count);
  // True when the page is resident (regardless of dirtiness).
  bool Resident(vfs::InodeNum ino, uint64_t page) const;
  // Drops every page (dirty pages are discarded); used at (re)mount.
  void Reset();

  PageCacheStats stats() const;
  uint64_t ResidentPages() const;

 private:
  struct Key {
    vfs::InodeNum ino;
    uint64_t page;
    bool operator==(const Key& other) const {
      return ino == other.ino && page == other.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.ino * 0x9e3779b97f4a7c15ULL ^ k.page);
    }
  };
  struct Page {
    std::vector<uint8_t> data;
    bool dirty = false;
    std::list<Key>::iterator lru_pos;
  };

  // All require mu_ held.
  Result<Page*> GetPageLocked(const Key& key, bool load);
  Status EvictOneLocked();
  void TouchLocked(const Key& key, Page& page);
  Status FlushKeysLocked(std::vector<Key>& dirty);

  BackingStore* const store_;
  SimClock* const clock_;
  const uint64_t capacity_pages_;
  const SimTime hit_cost_ns_;

  mutable std::mutex mu_;
  std::unordered_map<Key, Page, KeyHash> pages_;
  std::list<Key> lru_;  // front = most recent
  PageCacheStats stats_;
};

}  // namespace mux::fs

#endif  // MUX_FS_FSCOMMON_PAGE_CACHE_H_
