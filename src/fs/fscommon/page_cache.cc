#include "src/fs/fscommon/page_cache.h"

#include <algorithm>
#include <cstring>

namespace mux::fs {

PageCache::PageCache(BackingStore* store, SimClock* clock,
                     uint64_t capacity_pages, SimTime hit_cost_ns)
    : store_(store),
      clock_(clock),
      capacity_pages_(std::max<uint64_t>(capacity_pages, 1)),
      hit_cost_ns_(hit_cost_ns) {}

void PageCache::TouchLocked(const Key& key, Page& page) {
  lru_.erase(page.lru_pos);
  lru_.push_front(key);
  page.lru_pos = lru_.begin();
}

Status PageCache::EvictOneLocked() {
  if (lru_.empty()) {
    return InternalError("page cache eviction with no pages");
  }
  const Key victim = lru_.back();
  auto it = pages_.find(victim);
  if (it == pages_.end()) {
    return InternalError("LRU list out of sync with page map");
  }
  if (it->second.dirty) {
    MUX_RETURN_IF_ERROR(
        store_->StorePage(victim.ino, victim.page, it->second.data.data()));
    stats_.writebacks++;
  }
  lru_.pop_back();
  pages_.erase(it);
  stats_.evictions++;
  return Status::Ok();
}

Result<PageCache::Page*> PageCache::GetPageLocked(const Key& key, bool load) {
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    stats_.hits++;
    clock_->Advance(hit_cost_ns_);
    TouchLocked(key, it->second);
    return &it->second;
  }
  stats_.misses++;
  while (pages_.size() >= capacity_pages_) {
    MUX_RETURN_IF_ERROR(EvictOneLocked());
  }
  Page page;
  page.data.assign(kPageSize, 0);
  if (load) {
    MUX_RETURN_IF_ERROR(store_->LoadPage(key.ino, key.page, page.data.data()));
  }
  lru_.push_front(key);
  page.lru_pos = lru_.begin();
  auto [inserted, ok] = pages_.emplace(key, std::move(page));
  (void)ok;
  return &inserted->second;
}

Status PageCache::ReadThrough(vfs::InodeNum ino, uint64_t page,
                              uint64_t offset_in_page, uint64_t n,
                              uint8_t* out) {
  if (offset_in_page + n > kPageSize) {
    return InvalidArgumentError("page read crosses page boundary");
  }
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(Page * p, GetPageLocked(Key{ino, page}, /*load=*/true));
  std::memcpy(out, p->data.data() + offset_in_page, n);
  return Status::Ok();
}

Status PageCache::WriteThrough(vfs::InodeNum ino, uint64_t page,
                               uint64_t offset_in_page, uint64_t n,
                               const uint8_t* data) {
  if (offset_in_page + n > kPageSize) {
    return InvalidArgumentError("page write crosses page boundary");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A full-page overwrite needs no load; partial writes must merge with the
  // on-device content.
  const bool full = offset_in_page == 0 && n == kPageSize;
  MUX_ASSIGN_OR_RETURN(Page * p, GetPageLocked(Key{ino, page}, !full));
  std::memcpy(p->data.data() + offset_in_page, data, n);
  p->dirty = true;
  return Status::Ok();
}

Status PageCache::ReadAhead(vfs::InodeNum ino, uint64_t page, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < count; ++i) {
    MUX_RETURN_IF_ERROR(
        GetPageLocked(Key{ino, page + i}, /*load=*/true).status());
  }
  return Status::Ok();
}

Status BackingStore::StorePages(vfs::InodeNum ino, uint64_t first_page,
                                uint64_t count, const uint8_t* data) {
  for (uint64_t i = 0; i < count; ++i) {
    MUX_RETURN_IF_ERROR(
        StorePage(ino, first_page + i, data + i * kPageSize));
  }
  return Status::Ok();
}

Status PageCache::FlushKeysLocked(std::vector<Key>& dirty) {
  // Flush in file order and cluster consecutive pages into one StorePages
  // call: sequential writeback is what lets delayed allocation build large
  // extents, and clustering is what turns it into large device I/Os.
  std::sort(dirty.begin(), dirty.end(), [](const Key& a, const Key& b) {
    return a.ino != b.ino ? a.ino < b.ino : a.page < b.page;
  });
  constexpr size_t kMaxClusterPages = 256;  // 1 MiB writeback chunks
  std::vector<uint8_t> cluster;
  size_t i = 0;
  while (i < dirty.size()) {
    size_t run = 1;
    while (i + run < dirty.size() && run < kMaxClusterPages &&
           dirty[i + run].ino == dirty[i].ino &&
           dirty[i + run].page == dirty[i].page + run) {
      ++run;
    }
    cluster.resize(run * kPageSize);
    for (size_t j = 0; j < run; ++j) {
      std::memcpy(cluster.data() + j * kPageSize,
                  pages_.at(dirty[i + j]).data.data(), kPageSize);
    }
    MUX_RETURN_IF_ERROR(store_->StorePages(dirty[i].ino, dirty[i].page, run,
                                           cluster.data()));
    for (size_t j = 0; j < run; ++j) {
      pages_.at(dirty[i + j]).dirty = false;
      stats_.writebacks++;
    }
    i += run;
  }
  return Status::Ok();
}

Status PageCache::FlushInode(vfs::InodeNum ino) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Key> dirty;
  for (const auto& [key, page] : pages_) {
    if (key.ino == ino && page.dirty) {
      dirty.push_back(key);
    }
  }
  return FlushKeysLocked(dirty);
}

Status PageCache::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Key> dirty;
  for (const auto& [key, page] : pages_) {
    if (page.dirty) {
      dirty.push_back(key);
    }
  }
  return FlushKeysLocked(dirty);
}

void PageCache::InvalidateInode(vfs::InodeNum ino) {
  InvalidateFrom(ino, 0);
}

void PageCache::InvalidateFrom(vfs::InodeNum ino, uint64_t first_page) {
  InvalidateRange(ino, first_page, UINT64_MAX - first_page);
}

void PageCache::InvalidateRange(vfs::InodeNum ino, uint64_t first_page,
                                uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (it->first.ino == ino && it->first.page >= first_page &&
        it->first.page - first_page < count) {
      lru_.erase(it->second.lru_pos);
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
  lru_.clear();
}

bool PageCache::Resident(vfs::InodeNum ino, uint64_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.contains(Key{ino, page});
}

PageCacheStats PageCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t PageCache::ResidentPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

}  // namespace mux::fs
