// JBD2-style metadata journal used by xfslite and extlite.
//
// The journal occupies a fixed block range of the device. A transaction is
// written as: descriptor block (list of home block numbers), the data blocks
// themselves, then — after a device flush — a commit block whose CRC covers
// the whole transaction.
//
// Checkpointing is LAZY, as in real JBD2: Commit() only appends to the
// journal area (sequential writes near the journal — cheap even on a disk);
// the logged blocks reach their home locations later, in one batched,
// block-sorted pass, when Checkpoint() is called explicitly (fs Sync,
// unmount) or when the journal area fills. Until then the journal is the
// authority: Recover() replays every committed-but-not-checkpointed
// transaction in sequence order.
//
// Crash safety contract (exercised by journal_test.cc and the FS crash
// tests): a transaction is all-or-nothing. If the crash hits before the
// commit block is durable the transaction is ignored on replay; after, it is
// re-applied idempotently.
//
// Ordered data mode (extlite) is a caller-side protocol: write file data
// home and flush *before* committing the metadata transaction.
#ifndef MUX_FS_FSCOMMON_JOURNAL_H_
#define MUX_FS_FSCOMMON_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/device/block_device.h"

namespace mux::fs {

struct JournalStats {
  uint64_t commits = 0;
  uint64_t blocks_logged = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpointed_blocks = 0;
  uint64_t replayed_txs = 0;
};

class Journal {
 public:
  // A transaction under construction. Logging the same home block twice
  // keeps the latest content.
  class Tx {
   public:
    void LogBlock(uint64_t home_block, const uint8_t* data, uint32_t len);
    // Declares that `home_block` was freed and any journaled content for it
    // is dead (JBD2 revoke records). Without this, a lazy checkpoint or a
    // replay could resurrect stale metadata over a reallocated block.
    void RevokeBlock(uint64_t home_block) { revokes_.insert(home_block); }
    size_t BlockCount() const { return blocks_.size(); }
    size_t RevokeCount() const { return revokes_.size(); }

   private:
    friend class Journal;
    std::map<uint64_t, std::vector<uint8_t>> blocks_;
    std::set<uint64_t> revokes_;
  };

  // The journal uses blocks [start_block, start_block + num_blocks) of
  // `device`. num_blocks must be >= 4 (superblock + descriptor + 1 data +
  // commit).
  Journal(device::BlockDevice* device, uint64_t start_block,
          uint64_t num_blocks);

  // Writes a fresh journal superblock. Destroys any previous journal state.
  Status Format();

  // Replays committed-but-not-checkpointed transactions. Call on mount.
  Status Recover();

  std::unique_ptr<Tx> Begin() const { return std::make_unique<Tx>(); }

  // Appends the transaction to the journal area and makes it durable.
  // Checkpointing is deferred; Commit may trigger one only when the journal
  // area is out of space. Oversized revoke sets are split into preliminary
  // revoke-only transactions automatically. Empty transactions are a no-op.
  Status Commit(std::unique_ptr<Tx> tx);

  // Writes every committed transaction's blocks to their home locations
  // (batched, sorted by block number), then resets the journal tail.
  Status Checkpoint();

  JournalStats stats() const;

  // Max home blocks a single transaction can hold.
  uint64_t MaxTxBlocks() const { return num_blocks_ - 3; }

 private:
  static constexpr uint32_t kMagic = 0x4a424431;  // "JBD1"
  enum BlockType : uint32_t {
    kSuperblock = 0,
    kDescriptor = 1,
    kCommit = 2,
  };

  Status WriteSuperblockLocked();
  Status ReadSuperblockLocked(uint64_t* next_seq);
  Status CheckpointLocked();
  // Appends one transaction record; blocks/revokes must fit one descriptor.
  Status AppendTxLocked(const std::map<uint64_t, std::vector<uint8_t>>& blocks,
                        const std::vector<uint64_t>& revokes);

  device::BlockDevice* const device_;
  const uint64_t start_block_;
  const uint64_t num_blocks_;
  const uint32_t block_size_;

  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;   // sequence number of the next transaction
  uint64_t head_ = 1;       // next free journal-area block (relative)
  // Committed but not yet checkpointed: newest content per home block.
  std::map<uint64_t, std::vector<uint8_t>> pending_home_;
  JournalStats stats_;
};

}  // namespace mux::fs

#endif  // MUX_FS_FSCOMMON_JOURNAL_H_
