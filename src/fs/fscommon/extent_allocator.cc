#include "src/fs/fscommon/extent_allocator.h"

namespace mux::fs {

ExtentAllocator::ExtentAllocator(uint64_t start, uint64_t length) {
  if (length > 0) {
    Insert(start, length);
  }
}

void ExtentAllocator::Insert(uint64_t start, uint64_t len) {
  by_start_.emplace(start, len);
  by_len_.insert(LenKey{len, start});
  free_units_ += len;
}

void ExtentAllocator::Remove(uint64_t start, uint64_t len) {
  by_start_.erase(start);
  by_len_.erase(LenKey{len, start});
  free_units_ -= len;
}

void ExtentAllocator::Carve(uint64_t extent_start, uint64_t extent_len,
                            uint64_t start, uint64_t count) {
  Remove(extent_start, extent_len);
  if (start > extent_start) {
    Insert(extent_start, start - extent_start);
  }
  const uint64_t end = start + count;
  const uint64_t extent_end = extent_start + extent_len;
  if (extent_end > end) {
    Insert(end, extent_end - end);
  }
}

Result<uint64_t> ExtentAllocator::AllocContiguous(uint64_t count) {
  if (count == 0) {
    return InvalidArgumentError("zero-length allocation");
  }
  auto it = by_len_.lower_bound(LenKey{count, 0});  // best fit
  if (it == by_len_.end()) {
    return NoSpaceError("no contiguous extent of requested size");
  }
  const uint64_t start = it->start;
  Carve(start, it->len, start, count);
  return start;
}

Result<uint64_t> ExtentAllocator::AllocNear(uint64_t target, uint64_t count) {
  if (count == 0) {
    return InvalidArgumentError("zero-length allocation");
  }
  // Prefer the extent containing the target itself (exact locality).
  {
    auto it = by_start_.upper_bound(target);
    if (it != by_start_.begin()) {
      --it;
      if (it->first <= target && target + count <= it->first + it->second) {
        Carve(it->first, it->second, target, count);
        return target;
      }
    }
  }
  // Then the first free extent after the target that fits.
  for (auto it = by_start_.lower_bound(target); it != by_start_.end(); ++it) {
    if (it->second >= count) {
      const uint64_t start = it->first;
      Carve(start, it->second, start, count);
      return start;
    }
  }
  return AllocContiguous(count);
}

Result<std::pair<uint64_t, uint64_t>> ExtentAllocator::AllocUpTo(
    uint64_t count) {
  if (count == 0) {
    return InvalidArgumentError("zero-length allocation");
  }
  if (by_len_.empty()) {
    return NoSpaceError("allocator empty");
  }
  // Largest extent; trim to `count`.
  auto it = std::prev(by_len_.end());
  const uint64_t start = it->start;
  const uint64_t len = std::min(it->len, count);
  Carve(start, it->len, start, len);
  return std::make_pair(start, len);
}

Status ExtentAllocator::Free(uint64_t start, uint64_t count) {
  if (count == 0) {
    return Status::Ok();
  }
  // Find neighbours for coalescing; also detect double frees.
  auto next = by_start_.lower_bound(start);
  if (next != by_start_.end() && next->first < start + count) {
    return InvalidArgumentError("double free (overlaps following extent)");
  }
  uint64_t new_start = start;
  uint64_t new_len = count;
  if (next != by_start_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > start) {
      return InvalidArgumentError("double free (overlaps preceding extent)");
    }
    if (prev->first + prev->second == start) {
      new_start = prev->first;
      new_len += prev->second;
      Remove(prev->first, prev->second);
      next = by_start_.lower_bound(start);  // iterator invalidated
    }
  }
  if (next != by_start_.end() && next->first == start + count) {
    new_len += next->second;
    Remove(next->first, next->second);
  }
  Insert(new_start, new_len);
  return Status::Ok();
}

Status ExtentAllocator::Reserve(uint64_t start, uint64_t count) {
  if (count == 0) {
    return Status::Ok();
  }
  auto it = by_start_.upper_bound(start);
  if (it == by_start_.begin()) {
    return InvalidArgumentError("reserve outside free space");
  }
  --it;
  const uint64_t extent_start = it->first;
  const uint64_t extent_len = it->second;
  if (start < extent_start || start + count > extent_start + extent_len) {
    return InvalidArgumentError("reserve range not entirely free");
  }
  Carve(extent_start, extent_len, start, count);
  return Status::Ok();
}

uint64_t ExtentAllocator::LargestExtent() const {
  if (by_len_.empty()) {
    return 0;
  }
  return std::prev(by_len_.end())->len;
}

}  // namespace mux::fs
