// extlite — an ext4-like block-mapped journaling file system for HDDs.
//
// Compared to xfslite this is the classic design: block groups with
// persistent block/inode bitmaps, 12 direct + single/double indirect block
// pointers, ordered-mode metadata journaling, and an aggressive sequential
// readahead window (HDDs love sequential I/O and hate seeks). Like modern
// ext4, writes use delayed allocation: space is reserved at write time and
// concrete blocks are chosen at writeback, so flushes allocate in file order
// and stream to the disk instead of seeking.
#ifndef MUX_FS_EXTLITE_EXTLITE_H_
#define MUX_FS_EXTLITE_EXTLITE_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/device/block_device.h"
#include "src/fs/extlite/layout.h"
#include "src/fs/fscommon/journal.h"
#include "src/fs/fscommon/page_cache.h"
#include "src/vfs/file_system.h"

namespace mux::fs {

class ExtLite : public vfs::FileSystem {
 public:
  struct Options {
    uint64_t journal_blocks = 128;
    uint32_t group_count = 8;
    uint64_t inode_blocks_per_group = 0;  // 0: group_blocks/256 (>= 1)
    uint64_t page_cache_pages = 4096;
    SimTime op_software_ns = 400;
    uint32_t readahead_pages = 32;
  };

  ExtLite(device::BlockDevice* device, SimClock* clock, Options options);
  ExtLite(device::BlockDevice* device, SimClock* clock);
  ~ExtLite() override;

  Status Format();
  Status Mount();

  std::string_view Name() const override { return "extlite"; }
  SimTime TimestampGranularityNs() const override {
    return ext::kTimestampGranularityNs;
  }

  Result<vfs::FileHandle> Open(const std::string& path, uint32_t flags,
                               uint32_t mode = 0644) override;
  Status Close(vfs::FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<vfs::FileStat> Stat(const std::string& path) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;

  Result<uint64_t> Read(vfs::FileHandle handle, uint64_t offset,
                        uint64_t length, uint8_t* out) override;
  Result<uint64_t> Write(vfs::FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  Status Truncate(vfs::FileHandle handle, uint64_t new_size) override;
  Status Fsync(vfs::FileHandle handle, bool data_only) override;
  Status Fallocate(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(vfs::FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<vfs::FileStat> FStat(vfs::FileHandle handle) override;
  Status SetAttr(vfs::FileHandle handle,
                 const vfs::AttrUpdate& update) override;

  Result<vfs::FsStats> StatFs() override;
  Status Sync() override;

  PageCacheStats CacheStats() const { return cache_->stats(); }

 private:
  struct MemInode {
    vfs::InodeNum ino = vfs::kInvalidInode;
    bool valid = false;
    vfs::FileType type = vfs::FileType::kRegular;
    uint32_t mode = 0644;
    uint64_t size = 0;
    SimTime atime = 0;  // stored truncated to seconds
    SimTime mtime = 0;
    SimTime ctime = 0;
    // DRAM truth for lookups: file block -> disk block.
    std::map<uint64_t, uint64_t> mapping;
    // Mapping-tree metadata block locations (0 = absent).
    uint64_t single_ind = 0;
    uint64_t double_ind = 0;
    // child index (0..511) -> disk block of the second-level pointer block
    std::map<uint64_t, uint64_t> dbl_children;
    std::map<std::string, vfs::InodeNum> children;  // directories
    // Pages written into the cache but not yet assigned a disk block
    // (delayed allocation; resolved at writeback).
    std::set<uint64_t> delalloc;
    bool meta_dirty = false;
    // Mapping-tree blocks whose serialized content changed since the last
    // journal commit (subset of {single_ind, double_ind, dbl_children}).
    std::set<uint64_t> dirty_tree_blocks;
  };

  struct OpenFile {
    vfs::InodeNum ino = vfs::kInvalidInode;
    uint32_t flags = 0;
    uint64_t last_read_page = UINT64_MAX;
  };

  class CacheStore;

  SimTime TruncTime(SimTime t) const {
    return t - t % ext::kTimestampGranularityNs;
  }

  // --- geometry ---------------------------------------------------------
  uint64_t GroupFirstBlock(uint32_t group) const;
  uint32_t GroupOf(uint64_t disk_block) const;
  uint64_t InodeTableBlockOf(vfs::InodeNum ino) const;

  // --- bitmaps / allocation (mu_ held) -----------------------------------
  Result<uint64_t> AllocBlockLocked(uint32_t group_hint, uint64_t near_block);
  Status FreeBlockLocked(uint64_t disk_block);
  Result<vfs::InodeNum> AllocInodeNumLocked();
  void FreeInodeNumLocked(vfs::InodeNum ino);
  uint64_t BitmapBlockOfGroup(uint32_t group) const;
  uint64_t InodeBitmapBlockOfGroup(uint32_t group) const;

  // --- block mapping (mu_ held) -------------------------------------------
  uint64_t LookupBlockLocked(const MemInode& inode, uint64_t file_block) const;
  Status MapBlockLocked(MemInode& inode, uint64_t file_block,
                        uint64_t disk_block);
  // Marks the tree block covering `file_block` dirty (allocating indirect
  // blocks as needed).
  Status TouchTreeLocked(MemInode& inode, uint64_t file_block);
  Status UnmapFromLocked(MemInode& inode, uint64_t first_dead_block);

  // --- persistence (mu_ held) ----------------------------------------------
  void SerializeInodeBlockLocked(uint64_t table_block, uint8_t* out) const;
  void SerializeTreeBlockLocked(const MemInode& inode, uint64_t tree_block,
                                uint8_t* out) const;
  Status LogInodeLocked(Journal::Tx* tx, MemInode& inode);
  void LogBitmapsLocked(Journal::Tx* tx);
  Status CommitLocked(std::vector<vfs::InodeNum> inos);

  // --- directories (mu_ held) ------------------------------------------------
  Status WriteDirLocked(MemInode& dir);
  Status LoadDirLocked(MemInode& dir);

  // --- namespace (mu_ held) ----------------------------------------------------
  Result<MemInode*> ResolveLocked(const std::string& path);
  Result<MemInode*> ResolveDirLocked(const std::string& path);
  Result<MemInode*> HandleInodeLocked(vfs::FileHandle handle,
                                      uint32_t needed_flags);
  Result<MemInode*> AllocInodeLocked(vfs::FileType type, uint32_t mode);
  Status RemoveInodeLocked(MemInode& inode);
  Status TruncateLocked(MemInode& inode, uint64_t new_size);
  Status LoadInodeTreeLocked(MemInode& inode);

  void ChargeOp() const { clock_->Advance(options_.op_software_ns); }

  device::BlockDevice* const device_;
  SimClock* const clock_;
  const Options options_;

  uint64_t total_blocks_ = 0;
  uint64_t groups_first_ = 0;
  uint64_t group_blocks_ = 0;
  uint64_t inode_blocks_per_group_ = 0;
  uint64_t max_inodes_ = 0;

  mutable std::mutex mu_;
  std::vector<MemInode> inodes_;
  std::unordered_map<vfs::FileHandle, OpenFile> open_files_;
  // DRAM bitmaps, one bit per block within the group (bit set = in use).
  std::vector<std::vector<uint8_t>> block_bitmaps_;
  std::vector<std::vector<uint8_t>> inode_bitmaps_;
  std::set<uint64_t> dirty_bitmap_blocks_;  // device block numbers
  // Freed journaled blocks (tree blocks, directory data) awaiting a revoke
  // record in the next commit. Their bitmap bits clear only after the
  // revoke is durable (JBD2 defers freed-block reuse the same way).
  std::set<uint64_t> pending_revokes_;
  std::vector<uint64_t> deferred_frees_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<CacheStore> cache_store_;
  std::unique_ptr<PageCache> cache_;
  vfs::FileHandle next_handle_ = 1;
  uint64_t free_blocks_ = 0;
  uint64_t delalloc_reserved_ = 0;  // pages promised to delalloc writes
  bool mounted_ = false;
};

}  // namespace mux::fs

#endif  // MUX_FS_EXTLITE_EXTLITE_H_
