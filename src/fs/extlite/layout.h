// On-device layout of extlite (ext4-like block-mapped journaling FS).
//
// Block map (4 KiB blocks):
//   block 0                  superblock
//   blocks 1 .. 1+J          journal
//   then `group_count` block groups, each:
//     +0                     block bitmap (1 block, covers the group)
//     +1                     inode bitmap (1 block)
//     +2 .. +2+T             inode table (16 slots of 256 B per block)
//     +2+T ..                data blocks
//
// Files use the classic ext2/3 block map: 12 direct pointers, one single-
// indirect block (512 pointers) and one double-indirect block. Metadata
// (inode slots, bitmaps, indirect blocks) commits through the JBD journal in
// ordered mode: file data is written in place and flushed *before* the
// metadata transaction commits.
//
// Timestamps are stored with 1-second granularity — deliberately coarser
// than novafs/xfslite, to exercise the "feature imparity" problem the paper
// discusses in §4 (cf. FAT's 2-second timestamps).
#ifndef MUX_FS_EXTLITE_LAYOUT_H_
#define MUX_FS_EXTLITE_LAYOUT_H_

#include <cstdint>

namespace mux::fs::ext {

inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint32_t kSuperMagic = 0x45585431;  // "EXT1"

inline constexpr uint64_t kSuperBlock = 0;
inline constexpr uint64_t kJournalFirstBlock = 1;

inline constexpr uint64_t kInodeSlotSize = 256;
inline constexpr uint64_t kInodesPerBlock = kBlockSize / kInodeSlotSize;

inline constexpr uint32_t kDirectPointers = 12;
inline constexpr uint64_t kPointersPerBlock = kBlockSize / 8;

// file-block thresholds of the mapping tree
inline constexpr uint64_t kSingleIndirectFirst = kDirectPointers;
inline constexpr uint64_t kDoubleIndirectFirst =
    kSingleIndirectFirst + kPointersPerBlock;
inline constexpr uint64_t kMaxFileBlocks =
    kDoubleIndirectFirst + kPointersPerBlock * kPointersPerBlock;

struct SuperOffsets {
  static constexpr uint64_t kMagic = 0;          // u32
  static constexpr uint64_t kTotalBlocks = 8;    // u64
  static constexpr uint64_t kJournalBlocks = 16; // u64
  static constexpr uint64_t kGroupCount = 24;    // u32
  static constexpr uint64_t kGroupBlocks = 28;   // u32 blocks per group
  static constexpr uint64_t kInodeBlocksPerGroup = 32;  // u32
  static constexpr uint64_t kCrc = 36;           // u32
};

struct InodeOffsets {
  static constexpr uint64_t kValid = 0;     // u8
  static constexpr uint64_t kType = 1;      // u8
  static constexpr uint64_t kMode = 4;      // u32
  static constexpr uint64_t kSize = 8;      // u64
  static constexpr uint64_t kAtime = 16;    // u64 (seconds)
  static constexpr uint64_t kMtime = 24;    // u64 (seconds)
  static constexpr uint64_t kCtime = 32;    // u64 (seconds)
  static constexpr uint64_t kDirect = 40;   // 12 x u64
  static constexpr uint64_t kSingleInd = 136;  // u64
  static constexpr uint64_t kDoubleInd = 144;  // u64
};

// Directory entries: same 64-byte record as xfslite.
struct DentryOffsets {
  static constexpr uint64_t kIno = 0;
  static constexpr uint64_t kNameLen = 8;
  static constexpr uint64_t kName = 9;
};
inline constexpr uint64_t kDentrySize = 64;
inline constexpr uint64_t kMaxNameLen = kDentrySize - DentryOffsets::kName;

inline constexpr uint64_t kRootIno = 1;

inline constexpr uint64_t kTimestampGranularityNs = 1'000'000'000;

}  // namespace mux::fs::ext

#endif  // MUX_FS_EXTLITE_LAYOUT_H_
