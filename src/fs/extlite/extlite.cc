#include "src/fs/extlite/extlite.h"

#include <algorithm>
#include <cstring>

#include "src/common/checksum.h"
#include "src/common/encoding.h"
#include "src/common/logging.h"
#include "src/vfs/path.h"

namespace mux::fs {

using ext::DentryOffsets;
using ext::InodeOffsets;
using ext::SuperOffsets;
using ext::kBlockSize;
using ext::kDentrySize;
using ext::kDirectPointers;
using ext::kDoubleIndirectFirst;
using ext::kInodeSlotSize;
using ext::kInodesPerBlock;
using ext::kPointersPerBlock;
using ext::kRootIno;
using ext::kSingleIndirectFirst;

class ExtLite::CacheStore : public BackingStore {
 public:
  explicit CacheStore(ExtLite* fs) : fs_(fs) {}

  Status LoadPage(vfs::InodeNum ino, uint64_t page, uint8_t* out) override {
    const MemInode& inode = fs_->inodes_[ino];
    const uint64_t disk = fs_->LookupBlockLocked(inode, page);
    if (disk == 0) {
      std::memset(out, 0, kBlockSize);
      return Status::Ok();
    }
    return fs_->device_->ReadBlocks(disk, 1, out);
  }

  Status StorePage(vfs::InodeNum ino, uint64_t page,
                   const uint8_t* data) override {
    return StorePages(ino, page, 1, data);
  }

  // Delayed allocation + clustered writeback: blocks are chosen here, next
  // to the previous file block when possible, and contiguous disk runs go
  // out as single multi-block writes — what keeps an HDD streaming.
  Status StorePages(vfs::InodeNum ino, uint64_t first_page, uint64_t count,
                    const uint8_t* data) override {
    MemInode& inode = fs_->inodes_[ino];
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t page = first_page + i;
      if (fs_->LookupBlockLocked(inode, page) != 0) {
        continue;
      }
      uint64_t near_block = 0;
      if (page > 0) {
        near_block = fs_->LookupBlockLocked(inode, page - 1);
      }
      const uint32_t hint =
          near_block != 0
              ? fs_->GroupOf(near_block)
              : fs_->GroupOf(fs_->InodeTableBlockOf(ino));
      MUX_ASSIGN_OR_RETURN(
          uint64_t disk,
          fs_->AllocBlockLocked(hint, near_block ? near_block + 1 : 0));
      MUX_RETURN_IF_ERROR(fs_->MapBlockLocked(inode, page, disk));
      if (inode.delalloc.erase(page) > 0) {
        fs_->delalloc_reserved_--;
      }
      inode.meta_dirty = true;
    }
    uint64_t i = 0;
    while (i < count) {
      const uint64_t disk = fs_->LookupBlockLocked(inode, first_page + i);
      uint64_t run = 1;
      while (i + run < count &&
             fs_->LookupBlockLocked(inode, first_page + i + run) ==
                 disk + run) {
        ++run;
      }
      MUX_RETURN_IF_ERROR(fs_->device_->WriteBlocks(
          disk, static_cast<uint32_t>(run), data + i * kBlockSize));
      i += run;
    }
    return Status::Ok();
  }

 private:
  ExtLite* const fs_;
};

ExtLite::ExtLite(device::BlockDevice* device, SimClock* clock)
    : ExtLite(device, clock, Options()) {}

ExtLite::ExtLite(device::BlockDevice* device, SimClock* clock, Options options)
    : device_(device), clock_(clock), options_(options) {
  total_blocks_ = device_->capacity_blocks();
  groups_first_ = ext::kJournalFirstBlock + options_.journal_blocks;
  MUX_CHECK(total_blocks_ > groups_first_ + options_.group_count * 8)
      << "device too small for extlite";
  group_blocks_ = (total_blocks_ - groups_first_) / options_.group_count;
  inode_blocks_per_group_ =
      options_.inode_blocks_per_group != 0
          ? options_.inode_blocks_per_group
          : std::max<uint64_t>(1, group_blocks_ / 256);
  max_inodes_ =
      options_.group_count * inode_blocks_per_group_ * kInodesPerBlock;
  journal_ = std::make_unique<Journal>(device_, ext::kJournalFirstBlock,
                                       options_.journal_blocks);
  cache_store_ = std::make_unique<CacheStore>(this);
  cache_ = std::make_unique<PageCache>(cache_store_.get(), clock_,
                                       options_.page_cache_pages);
}

ExtLite::~ExtLite() {
  if (mounted_) {
    (void)Sync();
  }
}

// ---- geometry ---------------------------------------------------------------

uint64_t ExtLite::GroupFirstBlock(uint32_t group) const {
  return groups_first_ + static_cast<uint64_t>(group) * group_blocks_;
}
uint32_t ExtLite::GroupOf(uint64_t disk_block) const {
  return static_cast<uint32_t>(
      std::min<uint64_t>((disk_block - groups_first_) / group_blocks_,
                         options_.group_count - 1));
}
uint64_t ExtLite::BitmapBlockOfGroup(uint32_t group) const {
  return GroupFirstBlock(group);
}
uint64_t ExtLite::InodeBitmapBlockOfGroup(uint32_t group) const {
  return GroupFirstBlock(group) + 1;
}
uint64_t ExtLite::InodeTableBlockOf(vfs::InodeNum ino) const {
  const uint64_t inodes_per_group = inode_blocks_per_group_ * kInodesPerBlock;
  const uint32_t group = static_cast<uint32_t>(ino / inodes_per_group);
  const uint64_t within = ino % inodes_per_group;
  return GroupFirstBlock(group) + 2 + within / kInodesPerBlock;
}

// ---- bitmaps / allocation ------------------------------------------------------

Result<uint64_t> ExtLite::AllocBlockLocked(uint32_t group_hint,
                                           uint64_t near_block) {
  for (uint32_t i = 0; i < options_.group_count; ++i) {
    const uint32_t group = (group_hint + i) % options_.group_count;
    auto& bitmap = block_bitmaps_[group];
    const uint64_t first = GroupFirstBlock(group);
    // Start scanning at the locality hint when it lies in this group.
    uint64_t start_bit = 0;
    if (near_block >= first && near_block < first + group_blocks_) {
      start_bit = near_block - first;
    }
    for (uint64_t pass = 0; pass < 2; ++pass) {
      const uint64_t begin = pass == 0 ? start_bit : 0;
      const uint64_t end = pass == 0 ? group_blocks_ : start_bit;
      for (uint64_t bit = begin; bit < end; ++bit) {
        if ((bitmap[bit / 8] & (1u << (bit % 8))) == 0) {
          bitmap[bit / 8] |= 1u << (bit % 8);
          dirty_bitmap_blocks_.insert(BitmapBlockOfGroup(group));
          free_blocks_--;
          return first + bit;
        }
      }
    }
  }
  return NoSpaceError("extlite device full");
}

Status ExtLite::FreeBlockLocked(uint64_t disk_block) {
  const uint32_t group = GroupOf(disk_block);
  const uint64_t bit = disk_block - GroupFirstBlock(group);
  auto& bitmap = block_bitmaps_[group];
  if ((bitmap[bit / 8] & (1u << (bit % 8))) == 0) {
    return InternalError("extlite double block free");
  }
  bitmap[bit / 8] &= ~(1u << (bit % 8));
  dirty_bitmap_blocks_.insert(BitmapBlockOfGroup(group));
  free_blocks_++;
  return Status::Ok();
}

Result<vfs::InodeNum> ExtLite::AllocInodeNumLocked() {
  const uint64_t inodes_per_group = inode_blocks_per_group_ * kInodesPerBlock;
  for (uint32_t group = 0; group < options_.group_count; ++group) {
    auto& bitmap = inode_bitmaps_[group];
    for (uint64_t bit = 0; bit < inodes_per_group; ++bit) {
      const vfs::InodeNum ino = group * inodes_per_group + bit;
      if (ino == 0) {
        continue;  // inode 0 stays unused
      }
      if ((bitmap[bit / 8] & (1u << (bit % 8))) == 0) {
        bitmap[bit / 8] |= 1u << (bit % 8);
        dirty_bitmap_blocks_.insert(InodeBitmapBlockOfGroup(group));
        return ino;
      }
    }
  }
  return NoSpaceError("extlite inode table full");
}

void ExtLite::FreeInodeNumLocked(vfs::InodeNum ino) {
  const uint64_t inodes_per_group = inode_blocks_per_group_ * kInodesPerBlock;
  const uint32_t group = static_cast<uint32_t>(ino / inodes_per_group);
  const uint64_t bit = ino % inodes_per_group;
  inode_bitmaps_[group][bit / 8] &= ~(1u << (bit % 8));
  dirty_bitmap_blocks_.insert(InodeBitmapBlockOfGroup(group));
}

// ---- block mapping --------------------------------------------------------------

uint64_t ExtLite::LookupBlockLocked(const MemInode& inode,
                                    uint64_t file_block) const {
  auto it = inode.mapping.find(file_block);
  return it == inode.mapping.end() ? 0 : it->second;
}

Status ExtLite::TouchTreeLocked(MemInode& inode, uint64_t file_block) {
  inode.meta_dirty = true;
  if (file_block < kSingleIndirectFirst) {
    return Status::Ok();  // direct pointer: lives in the inode slot
  }
  if (file_block < kDoubleIndirectFirst) {
    if (inode.single_ind == 0) {
      MUX_ASSIGN_OR_RETURN(inode.single_ind,
                           AllocBlockLocked(GroupOf(InodeTableBlockOf(inode.ino)),
                                            0));
    }
    inode.dirty_tree_blocks.insert(inode.single_ind);
    return Status::Ok();
  }
  if (file_block >= ext::kMaxFileBlocks) {
    return NoSpaceError("file exceeds maximum mapped size");
  }
  if (inode.double_ind == 0) {
    MUX_ASSIGN_OR_RETURN(inode.double_ind,
                         AllocBlockLocked(GroupOf(InodeTableBlockOf(inode.ino)),
                                          0));
  }
  const uint64_t child = (file_block - kDoubleIndirectFirst) / kPointersPerBlock;
  auto it = inode.dbl_children.find(child);
  if (it == inode.dbl_children.end()) {
    MUX_ASSIGN_OR_RETURN(uint64_t blk,
                         AllocBlockLocked(GroupOf(inode.double_ind), 0));
    inode.dbl_children.emplace(child, blk);
    inode.dirty_tree_blocks.insert(inode.double_ind);
    inode.dirty_tree_blocks.insert(blk);
  } else {
    inode.dirty_tree_blocks.insert(it->second);
  }
  return Status::Ok();
}

Status ExtLite::MapBlockLocked(MemInode& inode, uint64_t file_block,
                               uint64_t disk_block) {
  MUX_RETURN_IF_ERROR(TouchTreeLocked(inode, file_block));
  inode.mapping[file_block] = disk_block;
  return Status::Ok();
}

Status ExtLite::UnmapFromLocked(MemInode& inode, uint64_t first_dead_block) {
  for (auto it = inode.mapping.lower_bound(first_dead_block);
       it != inode.mapping.end();) {
    if (inode.type == vfs::FileType::kDirectory) {
      pending_revokes_.insert(it->second);  // dir data is journaled
      deferred_frees_.push_back(it->second);
    } else {
      MUX_RETURN_IF_ERROR(FreeBlockLocked(it->second));
    }
    it = inode.mapping.erase(it);
  }
  inode.meta_dirty = true;

  // Prune now-empty indirect blocks.
  if (inode.single_ind != 0 &&
      inode.mapping.lower_bound(kSingleIndirectFirst) ==
          inode.mapping.lower_bound(kDoubleIndirectFirst)) {
    inode.dirty_tree_blocks.erase(inode.single_ind);
    pending_revokes_.insert(inode.single_ind);
    deferred_frees_.push_back(inode.single_ind);
    inode.single_ind = 0;
  } else if (inode.single_ind != 0) {
    inode.dirty_tree_blocks.insert(inode.single_ind);
  }
  for (auto it = inode.dbl_children.begin(); it != inode.dbl_children.end();) {
    const uint64_t child_first =
        kDoubleIndirectFirst + it->first * kPointersPerBlock;
    auto lo = inode.mapping.lower_bound(child_first);
    if (lo == inode.mapping.end() ||
        lo->first >= child_first + kPointersPerBlock) {
      inode.dirty_tree_blocks.erase(it->second);
      pending_revokes_.insert(it->second);
      deferred_frees_.push_back(it->second);
      it = inode.dbl_children.erase(it);
      if (inode.double_ind != 0) {
        inode.dirty_tree_blocks.insert(inode.double_ind);
      }
    } else {
      inode.dirty_tree_blocks.insert(it->second);
      ++it;
    }
  }
  if (inode.double_ind != 0 && inode.dbl_children.empty()) {
    inode.dirty_tree_blocks.erase(inode.double_ind);
    pending_revokes_.insert(inode.double_ind);
    deferred_frees_.push_back(inode.double_ind);
    inode.double_ind = 0;
  }
  return Status::Ok();
}

// ---- persistence -------------------------------------------------------------------

void ExtLite::SerializeInodeBlockLocked(uint64_t table_block,
                                        uint8_t* out) const {
  std::memset(out, 0, kBlockSize);
  // Which inodes live in this table block?
  const uint64_t inodes_per_group = inode_blocks_per_group_ * kInodesPerBlock;
  // Find the group by scanning geometry (table blocks are per group).
  for (uint32_t group = 0; group < options_.group_count; ++group) {
    const uint64_t table_first = GroupFirstBlock(group) + 2;
    if (table_block < table_first ||
        table_block >= table_first + inode_blocks_per_group_) {
      continue;
    }
    const uint64_t first_ino = group * inodes_per_group +
                               (table_block - table_first) * kInodesPerBlock;
    for (uint64_t i = 0; i < kInodesPerBlock; ++i) {
      const uint64_t ino = first_ino + i;
      if (ino >= inodes_.size() || !inodes_[ino].valid) {
        continue;
      }
      const MemInode& inode = inodes_[ino];
      uint8_t* slot = out + i * kInodeSlotSize;
      slot[InodeOffsets::kValid] = 1;
      slot[InodeOffsets::kType] =
          inode.type == vfs::FileType::kDirectory ? 1 : 0;
      Put32(slot + InodeOffsets::kMode, inode.mode);
      Put64(slot + InodeOffsets::kSize, inode.size);
      Put64(slot + InodeOffsets::kAtime, inode.atime);
      Put64(slot + InodeOffsets::kMtime, inode.mtime);
      Put64(slot + InodeOffsets::kCtime, inode.ctime);
      for (uint64_t d = 0; d < kDirectPointers; ++d) {
        auto it = inode.mapping.find(d);
        Put64(slot + InodeOffsets::kDirect + d * 8,
              it == inode.mapping.end() ? 0 : it->second);
      }
      Put64(slot + InodeOffsets::kSingleInd, inode.single_ind);
      Put64(slot + InodeOffsets::kDoubleInd, inode.double_ind);
    }
    return;
  }
}

void ExtLite::SerializeTreeBlockLocked(const MemInode& inode,
                                       uint64_t tree_block,
                                       uint8_t* out) const {
  std::memset(out, 0, kBlockSize);
  if (tree_block == inode.single_ind) {
    for (uint64_t i = 0; i < kPointersPerBlock; ++i) {
      auto it = inode.mapping.find(kSingleIndirectFirst + i);
      Put64(out + i * 8, it == inode.mapping.end() ? 0 : it->second);
    }
    return;
  }
  if (tree_block == inode.double_ind) {
    for (const auto& [child, blk] : inode.dbl_children) {
      Put64(out + child * 8, blk);
    }
    return;
  }
  for (const auto& [child, blk] : inode.dbl_children) {
    if (blk != tree_block) {
      continue;
    }
    const uint64_t first = kDoubleIndirectFirst + child * kPointersPerBlock;
    for (uint64_t i = 0; i < kPointersPerBlock; ++i) {
      auto it = inode.mapping.find(first + i);
      Put64(out + i * 8, it == inode.mapping.end() ? 0 : it->second);
    }
    return;
  }
}

Status ExtLite::LogInodeLocked(Journal::Tx* tx, MemInode& inode) {
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t tree_block : inode.dirty_tree_blocks) {
    SerializeTreeBlockLocked(inode, tree_block, block.data());
    tx->LogBlock(tree_block, block.data(), kBlockSize);
  }
  SerializeInodeBlockLocked(InodeTableBlockOf(inode.ino), block.data());
  tx->LogBlock(InodeTableBlockOf(inode.ino), block.data(), kBlockSize);
  return Status::Ok();
}

void ExtLite::LogBitmapsLocked(Journal::Tx* tx) {
  std::vector<uint8_t> block(kBlockSize, 0);
  for (uint64_t bitmap_block : dirty_bitmap_blocks_) {
    // Identify which bitmap this is.
    for (uint32_t group = 0; group < options_.group_count; ++group) {
      if (bitmap_block == BitmapBlockOfGroup(group)) {
        std::memset(block.data(), 0, kBlockSize);
        std::memcpy(block.data(), block_bitmaps_[group].data(),
                    std::min<size_t>(block_bitmaps_[group].size(),
                                     kBlockSize));
        tx->LogBlock(bitmap_block, block.data(), kBlockSize);
        break;
      }
      if (bitmap_block == InodeBitmapBlockOfGroup(group)) {
        std::memset(block.data(), 0, kBlockSize);
        std::memcpy(block.data(), inode_bitmaps_[group].data(),
                    std::min<size_t>(inode_bitmaps_[group].size(),
                                     kBlockSize));
        tx->LogBlock(bitmap_block, block.data(), kBlockSize);
        break;
      }
    }
  }
}

Status ExtLite::CommitLocked(std::vector<vfs::InodeNum> inos) {
  // Common case: everything fits one transaction.
  uint64_t blocks_needed = dirty_bitmap_blocks_.size();
  for (vfs::InodeNum ino : inos) {
    blocks_needed += 1 + inodes_[ino].dirty_tree_blocks.size();
  }
  if (blocks_needed <= journal_->MaxTxBlocks()) {
    auto tx = journal_->Begin();
    LogBitmapsLocked(tx.get());
    for (vfs::InodeNum ino : inos) {
      MUX_RETURN_IF_ERROR(LogInodeLocked(tx.get(), inodes_[ino]));
    }
    for (uint64_t revoked : pending_revokes_) {
      tx->RevokeBlock(revoked);
    }
    MUX_RETURN_IF_ERROR(journal_->Commit(std::move(tx)));
    pending_revokes_.clear();
    for (uint64_t block : deferred_frees_) {
      MUX_RETURN_IF_ERROR(FreeBlockLocked(block));
    }
    deferred_frees_.clear();
  } else {
    // Staged: bitmaps + revokes first (a crash can only leak, never
    // corrupt), then per-inode transactions.
    auto tx = journal_->Begin();
    LogBitmapsLocked(tx.get());
    for (uint64_t revoked : pending_revokes_) {
      tx->RevokeBlock(revoked);
    }
    MUX_RETURN_IF_ERROR(journal_->Commit(std::move(tx)));
    pending_revokes_.clear();
    for (uint64_t block : deferred_frees_) {
      MUX_RETURN_IF_ERROR(FreeBlockLocked(block));
    }
    deferred_frees_.clear();
    for (vfs::InodeNum ino : inos) {
      MemInode& inode = inodes_[ino];
      // Split oversized tree-block sets.
      std::vector<uint64_t> tree(inode.dirty_tree_blocks.begin(),
                                 inode.dirty_tree_blocks.end());
      const uint64_t chunk = journal_->MaxTxBlocks() - 1;
      for (size_t i = 0; i < tree.size(); i += chunk) {
        auto part = journal_->Begin();
        std::vector<uint8_t> block(kBlockSize);
        for (size_t j = i; j < std::min(tree.size(), i + chunk); ++j) {
          SerializeTreeBlockLocked(inode, tree[j], block.data());
          part->LogBlock(tree[j], block.data(), kBlockSize);
        }
        MUX_RETURN_IF_ERROR(journal_->Commit(std::move(part)));
      }
      auto last = journal_->Begin();
      std::vector<uint8_t> block(kBlockSize);
      SerializeInodeBlockLocked(InodeTableBlockOf(ino), block.data());
      last->LogBlock(InodeTableBlockOf(ino), block.data(), kBlockSize);
      MUX_RETURN_IF_ERROR(journal_->Commit(std::move(last)));
    }
  }
  dirty_bitmap_blocks_.clear();
  for (vfs::InodeNum ino : inos) {
    inodes_[ino].dirty_tree_blocks.clear();
    inodes_[ino].meta_dirty = false;
  }
  return Status::Ok();
}

// ---- directories -----------------------------------------------------------------

Status ExtLite::WriteDirLocked(MemInode& dir) {
  const uint64_t bytes = dir.children.size() * kDentrySize;
  const uint64_t blocks = (bytes + kBlockSize - 1) / kBlockSize;
  for (uint64_t b = 0; b < blocks; ++b) {
    if (LookupBlockLocked(dir, b) == 0) {
      MUX_ASSIGN_OR_RETURN(
          uint64_t disk,
          AllocBlockLocked(GroupOf(InodeTableBlockOf(dir.ino)), 0));
      MUX_RETURN_IF_ERROR(MapBlockLocked(dir, b, disk));
    }
  }
  MUX_RETURN_IF_ERROR(UnmapFromLocked(dir, blocks));

  auto tx = journal_->Begin();
  std::vector<uint8_t> block(kBlockSize, 0);
  uint64_t b = 0;
  size_t in_block = 0;
  for (const auto& [name, ino] : dir.children) {
    uint8_t* rec = block.data() + in_block * kDentrySize;
    Put64(rec + DentryOffsets::kIno, ino);
    rec[DentryOffsets::kNameLen] = static_cast<uint8_t>(name.size());
    std::memcpy(rec + DentryOffsets::kName, name.data(), name.size());
    if (++in_block == kBlockSize / kDentrySize) {
      tx->LogBlock(LookupBlockLocked(dir, b), block.data(), kBlockSize);
      std::memset(block.data(), 0, kBlockSize);
      in_block = 0;
      ++b;
    }
  }
  if (in_block > 0) {
    tx->LogBlock(LookupBlockLocked(dir, b), block.data(), kBlockSize);
  }
  dir.size = bytes;
  dir.mtime = TruncTime(clock_->Now());
  LogBitmapsLocked(tx.get());
  MUX_RETURN_IF_ERROR(LogInodeLocked(tx.get(), dir));
  for (uint64_t revoked : pending_revokes_) {
    tx->RevokeBlock(revoked);
  }
  MUX_RETURN_IF_ERROR(journal_->Commit(std::move(tx)));
  pending_revokes_.clear();
  for (uint64_t block : deferred_frees_) {
    MUX_RETURN_IF_ERROR(FreeBlockLocked(block));
  }
  deferred_frees_.clear();
  dirty_bitmap_blocks_.clear();
  dir.dirty_tree_blocks.clear();
  dir.meta_dirty = false;
  return Status::Ok();
}

Status ExtLite::LoadDirLocked(MemInode& dir) {
  dir.children.clear();
  const uint64_t blocks = (dir.size + kBlockSize - 1) / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t disk = LookupBlockLocked(dir, b);
    if (disk == 0) {
      return CorruptionError("directory data block missing");
    }
    MUX_RETURN_IF_ERROR(device_->ReadBlocks(disk, 1, block.data()));
    for (size_t i = 0; i < kBlockSize / kDentrySize; ++i) {
      const uint8_t* rec = block.data() + i * kDentrySize;
      const vfs::InodeNum ino = Get64(rec + DentryOffsets::kIno);
      if (ino == 0) {
        continue;
      }
      const uint8_t name_len = rec[DentryOffsets::kNameLen];
      if (name_len == 0 || name_len > ext::kMaxNameLen) {
        return CorruptionError("bad dentry name length");
      }
      dir.children.emplace(
          std::string(
              reinterpret_cast<const char*>(rec + DentryOffsets::kName),
              name_len),
          ino);
    }
  }
  return Status::Ok();
}

// ---- format / mount ------------------------------------------------------------

Status ExtLite::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  inodes_.assign(max_inodes_, MemInode{});
  open_files_.clear();
  dirty_bitmap_blocks_.clear();

  std::vector<uint8_t> super(kBlockSize, 0);
  Put32(super.data() + SuperOffsets::kMagic, ext::kSuperMagic);
  Put64(super.data() + SuperOffsets::kTotalBlocks, total_blocks_);
  Put64(super.data() + SuperOffsets::kJournalBlocks, options_.journal_blocks);
  Put32(super.data() + SuperOffsets::kGroupCount, options_.group_count);
  Put32(super.data() + SuperOffsets::kGroupBlocks,
        static_cast<uint32_t>(group_blocks_));
  Put32(super.data() + SuperOffsets::kInodeBlocksPerGroup,
        static_cast<uint32_t>(inode_blocks_per_group_));
  Put32(super.data() + SuperOffsets::kCrc,
        Crc32c(super.data(), SuperOffsets::kCrc));
  MUX_RETURN_IF_ERROR(device_->WriteBlocks(ext::kSuperBlock, 1, super.data()));
  MUX_RETURN_IF_ERROR(journal_->Format());

  // Initialize bitmaps: metadata blocks (bitmaps + inode table) are in use.
  block_bitmaps_.assign(options_.group_count,
                        std::vector<uint8_t>((group_blocks_ + 7) / 8, 0));
  inode_bitmaps_.assign(
      options_.group_count,
      std::vector<uint8_t>(
          (inode_blocks_per_group_ * kInodesPerBlock + 7) / 8, 0));
  free_blocks_ = 0;
  std::vector<uint8_t> zero(kBlockSize, 0);
  for (uint32_t group = 0; group < options_.group_count; ++group) {
    const uint64_t meta = 2 + inode_blocks_per_group_;
    for (uint64_t bit = 0; bit < meta; ++bit) {
      block_bitmaps_[group][bit / 8] |= 1u << (bit % 8);
    }
    free_blocks_ += group_blocks_ - meta;
    dirty_bitmap_blocks_.insert(BitmapBlockOfGroup(group));
    dirty_bitmap_blocks_.insert(InodeBitmapBlockOfGroup(group));
    // Zero the inode table.
    for (uint64_t b = 0; b < inode_blocks_per_group_; ++b) {
      MUX_RETURN_IF_ERROR(
          device_->WriteBlocks(GroupFirstBlock(group) + 2 + b, 1,
                               zero.data()));
    }
  }
  // Account the tail remainder lost to integer division.
  MUX_RETURN_IF_ERROR(device_->Flush());

  // Root inode: mark used in the inode bitmap, build, commit.
  inode_bitmaps_[0][kRootIno / 8] |= 1u << (kRootIno % 8);
  MemInode& root = inodes_[kRootIno];
  root.ino = kRootIno;
  root.valid = true;
  root.type = vfs::FileType::kDirectory;
  root.mode = 0755;
  root.ctime = root.mtime = root.atime = TruncTime(clock_->Now());
  root.meta_dirty = true;
  MUX_RETURN_IF_ERROR(CommitLocked({kRootIno}));
  mounted_ = true;
  return Status::Ok();
}

Status ExtLite::LoadInodeTreeLocked(MemInode& inode) {
  std::vector<uint8_t> block(kBlockSize);
  if (inode.single_ind != 0) {
    MUX_RETURN_IF_ERROR(device_->ReadBlocks(inode.single_ind, 1, block.data()));
    for (uint64_t i = 0; i < kPointersPerBlock; ++i) {
      const uint64_t ptr = Get64(block.data() + i * 8);
      if (ptr != 0) {
        inode.mapping[kSingleIndirectFirst + i] = ptr;
      }
    }
  }
  if (inode.double_ind != 0) {
    MUX_RETURN_IF_ERROR(device_->ReadBlocks(inode.double_ind, 1, block.data()));
    std::vector<std::pair<uint64_t, uint64_t>> children;
    for (uint64_t c = 0; c < kPointersPerBlock; ++c) {
      const uint64_t child_block = Get64(block.data() + c * 8);
      if (child_block != 0) {
        children.emplace_back(c, child_block);
      }
    }
    std::vector<uint8_t> child(kBlockSize);
    for (const auto& [c, child_block] : children) {
      inode.dbl_children.emplace(c, child_block);
      MUX_RETURN_IF_ERROR(device_->ReadBlocks(child_block, 1, child.data()));
      const uint64_t first = kDoubleIndirectFirst + c * kPointersPerBlock;
      for (uint64_t i = 0; i < kPointersPerBlock; ++i) {
        const uint64_t ptr = Get64(child.data() + i * 8);
        if (ptr != 0) {
          inode.mapping[first + i] = ptr;
        }
      }
    }
  }
  return Status::Ok();
}

Status ExtLite::Mount() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_->Reset();  // a fresh mount must not serve pre-mount cache pages
  std::vector<uint8_t> super(kBlockSize);
  MUX_RETURN_IF_ERROR(device_->ReadBlocks(ext::kSuperBlock, 1, super.data()));
  if (Get32(super.data() + SuperOffsets::kMagic) != ext::kSuperMagic) {
    return CorruptionError("extlite superblock magic mismatch");
  }
  if (Get32(super.data() + SuperOffsets::kCrc) !=
      Crc32c(super.data(), SuperOffsets::kCrc)) {
    return CorruptionError("extlite superblock checksum mismatch");
  }
  if (Get64(super.data() + SuperOffsets::kTotalBlocks) != total_blocks_ ||
      Get64(super.data() + SuperOffsets::kJournalBlocks) !=
          options_.journal_blocks ||
      Get32(super.data() + SuperOffsets::kGroupCount) !=
          options_.group_count ||
      Get32(super.data() + SuperOffsets::kGroupBlocks) != group_blocks_ ||
      Get32(super.data() + SuperOffsets::kInodeBlocksPerGroup) !=
          inode_blocks_per_group_) {
    return CorruptionError("extlite geometry mismatch");
  }

  MUX_RETURN_IF_ERROR(journal_->Recover());

  inodes_.assign(max_inodes_, MemInode{});
  open_files_.clear();
  dirty_bitmap_blocks_.clear();
  block_bitmaps_.assign(options_.group_count,
                        std::vector<uint8_t>((group_blocks_ + 7) / 8, 0));
  inode_bitmaps_.assign(
      options_.group_count,
      std::vector<uint8_t>(
          (inode_blocks_per_group_ * kInodesPerBlock + 7) / 8, 0));
  free_blocks_ = 0;
  std::vector<uint8_t> block(kBlockSize);
  for (uint32_t group = 0; group < options_.group_count; ++group) {
    MUX_RETURN_IF_ERROR(
        device_->ReadBlocks(BitmapBlockOfGroup(group), 1, block.data()));
    std::memcpy(block_bitmaps_[group].data(), block.data(),
                block_bitmaps_[group].size());
    MUX_RETURN_IF_ERROR(
        device_->ReadBlocks(InodeBitmapBlockOfGroup(group), 1, block.data()));
    std::memcpy(inode_bitmaps_[group].data(), block.data(),
                inode_bitmaps_[group].size());
    for (uint64_t bit = 0; bit < group_blocks_; ++bit) {
      if ((block_bitmaps_[group][bit / 8] & (1u << (bit % 8))) == 0) {
        free_blocks_++;
      }
    }
  }

  const uint64_t inodes_per_group = inode_blocks_per_group_ * kInodesPerBlock;
  for (vfs::InodeNum ino = kRootIno; ino < max_inodes_; ++ino) {
    const uint32_t group = static_cast<uint32_t>(ino / inodes_per_group);
    const uint64_t bit = ino % inodes_per_group;
    if ((inode_bitmaps_[group][bit / 8] & (1u << (bit % 8))) == 0) {
      continue;
    }
    MUX_RETURN_IF_ERROR(
        device_->ReadBlocks(InodeTableBlockOf(ino), 1, block.data()));
    const uint8_t* slot =
        block.data() + (ino % kInodesPerBlock) * kInodeSlotSize;
    if (slot[InodeOffsets::kValid] != 1) {
      // Bitmap says used but the slot is invalid: a leak from a staged
      // commit crash. Reclaim it.
      FreeInodeNumLocked(ino);
      continue;
    }
    MemInode& inode = inodes_[ino];
    inode.ino = ino;
    inode.valid = true;
    inode.type = slot[InodeOffsets::kType] == 1 ? vfs::FileType::kDirectory
                                                : vfs::FileType::kRegular;
    inode.mode = Get32(slot + InodeOffsets::kMode);
    inode.size = Get64(slot + InodeOffsets::kSize);
    inode.atime = Get64(slot + InodeOffsets::kAtime);
    inode.mtime = Get64(slot + InodeOffsets::kMtime);
    inode.ctime = Get64(slot + InodeOffsets::kCtime);
    for (uint64_t d = 0; d < kDirectPointers; ++d) {
      const uint64_t ptr = Get64(slot + InodeOffsets::kDirect + d * 8);
      if (ptr != 0) {
        inode.mapping[d] = ptr;
      }
    }
    inode.single_ind = Get64(slot + InodeOffsets::kSingleInd);
    inode.double_ind = Get64(slot + InodeOffsets::kDoubleInd);
    MUX_RETURN_IF_ERROR(LoadInodeTreeLocked(inode));
  }
  if (!inodes_[kRootIno].valid) {
    return CorruptionError("extlite root inode missing");
  }
  for (MemInode& inode : inodes_) {
    if (inode.valid && inode.type == vfs::FileType::kDirectory) {
      MUX_RETURN_IF_ERROR(LoadDirLocked(inode));
    }
  }
  mounted_ = true;
  return Status::Ok();
}

// ---- namespace helpers ------------------------------------------------------------

Result<ExtLite::MemInode*> ExtLite::ResolveLocked(const std::string& path) {
  if (!vfs::IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  MemInode* cur = &inodes_[kRootIno];
  for (const auto& part : vfs::SplitPath(path)) {
    if (cur->type != vfs::FileType::kDirectory) {
      return NotDirError(path);
    }
    auto it = cur->children.find(part);
    if (it == cur->children.end()) {
      return NotFoundError(path);
    }
    if (it->second >= inodes_.size() || !inodes_[it->second].valid) {
      return CorruptionError("dentry points to invalid inode");
    }
    cur = &inodes_[it->second];
  }
  return cur;
}

Result<ExtLite::MemInode*> ExtLite::ResolveDirLocked(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  return node;
}

Result<ExtLite::MemInode*> ExtLite::HandleInodeLocked(vfs::FileHandle handle,
                                                      uint32_t needed_flags) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return BadHandleError("unknown handle");
  }
  if ((it->second.flags & needed_flags) != needed_flags) {
    return PermissionError("handle lacks required access mode");
  }
  MemInode& inode = inodes_[it->second.ino];
  if (!inode.valid) {
    return BadHandleError("file was removed");
  }
  return &inode;
}

Result<ExtLite::MemInode*> ExtLite::AllocInodeLocked(vfs::FileType type,
                                                     uint32_t mode) {
  MUX_ASSIGN_OR_RETURN(vfs::InodeNum ino, AllocInodeNumLocked());
  MemInode& inode = inodes_[ino];
  inode = MemInode{};
  inode.ino = ino;
  inode.valid = true;
  inode.type = type;
  inode.mode = mode;
  inode.ctime = inode.mtime = inode.atime = TruncTime(clock_->Now());
  inode.meta_dirty = true;
  return &inode;
}

Status ExtLite::RemoveInodeLocked(MemInode& inode) {
  cache_->InvalidateInode(inode.ino);
  delalloc_reserved_ -= inode.delalloc.size();
  inode.delalloc.clear();
  MUX_RETURN_IF_ERROR(UnmapFromLocked(inode, 0));
  FreeInodeNumLocked(inode.ino);
  inode = MemInode{};
  return Status::Ok();
}

// ---- public API ----------------------------------------------------------------------

Result<vfs::FileHandle> ExtLite::Open(const std::string& path, uint32_t flags,
                                      uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  auto resolved = ResolveLocked(path);
  MemInode* node = nullptr;
  if (resolved.ok()) {
    if ((flags & vfs::OpenFlags::kExclusive) &&
        (flags & vfs::OpenFlags::kCreate)) {
      return ExistsError(path);
    }
    node = *resolved;
    if (node->type == vfs::FileType::kDirectory) {
      return IsDirError(path);
    }
    if (flags & vfs::OpenFlags::kTruncate) {
      MUX_RETURN_IF_ERROR(TruncateLocked(*node, 0));
    }
  } else if (resolved.status().code() == ErrorCode::kNotFound &&
             (flags & vfs::OpenFlags::kCreate)) {
    const std::string name = vfs::Basename(path);
    if (name.size() > ext::kMaxNameLen) {
      return InvalidArgumentError("name too long: " + name);
    }
    MUX_ASSIGN_OR_RETURN(MemInode * parent,
                         ResolveDirLocked(vfs::Dirname(path)));
    MUX_ASSIGN_OR_RETURN(node, AllocInodeLocked(vfs::FileType::kRegular, mode));
    parent->children.emplace(name, node->ino);
    MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
    MUX_RETURN_IF_ERROR(CommitLocked({node->ino}));
  } else {
    return resolved.status();
  }
  const vfs::FileHandle handle = next_handle_++;
  open_files_.emplace(handle, OpenFile{node->ino, flags, UINT64_MAX});
  return handle;
}

Status ExtLite::Close(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(handle) == 0) {
    return BadHandleError("close of unknown handle");
  }
  return Status::Ok();
}

Status ExtLite::Mkdir(const std::string& path, uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (!vfs::IsValidPath(path) || vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("invalid mkdir path: " + path);
  }
  if (ResolveLocked(path).ok()) {
    return ExistsError(path);
  }
  const std::string name = vfs::Basename(path);
  if (name.size() > ext::kMaxNameLen) {
    return InvalidArgumentError("name too long: " + name);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       AllocInodeLocked(vfs::FileType::kDirectory, mode));
  parent->children.emplace(name, node->ino);
  MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
  return CommitLocked({node->ino});
}

Status ExtLite::Rmdir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("cannot remove root");
  }
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  if (!node->children.empty()) {
    return NotEmptyError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  const vfs::InodeNum dead_ino = node->ino;
  parent->children.erase(vfs::Basename(path));
  MUX_RETURN_IF_ERROR(RemoveInodeLocked(*node));
  MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
  return CommitLocked({dead_ino});
}

Status ExtLite::Unlink(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type == vfs::FileType::kDirectory) {
    return IsDirError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  const vfs::InodeNum dead_ino = node->ino;
  parent->children.erase(vfs::Basename(path));
  MUX_RETURN_IF_ERROR(RemoveInodeLocked(*node));
  MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
  return CommitLocked({dead_ino});
}

Status ExtLite::Rename(const std::string& from, const std::string& to) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(from));
  if (!vfs::IsValidPath(to)) {
    return InvalidArgumentError("invalid rename target: " + to);
  }
  if (vfs::PathHasPrefix(to, from) &&
      vfs::NormalizePath(to) != vfs::NormalizePath(from)) {
    return InvalidArgumentError("cannot rename a directory into itself");
  }
  const std::string dst_name = vfs::Basename(to);
  if (dst_name.size() > ext::kMaxNameLen) {
    return InvalidArgumentError("name too long: " + dst_name);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * src_dir, ResolveDirLocked(vfs::Dirname(from)));
  MUX_ASSIGN_OR_RETURN(MemInode * dst_dir, ResolveDirLocked(vfs::Dirname(to)));

  std::vector<vfs::InodeNum> extra;
  auto existing = dst_dir->children.find(dst_name);
  if (existing != dst_dir->children.end()) {
    MemInode& target = inodes_[existing->second];
    if (target.type == vfs::FileType::kDirectory && !target.children.empty()) {
      return NotEmptyError(to);
    }
    extra.push_back(target.ino);
    dst_dir->children.erase(existing);
    MUX_RETURN_IF_ERROR(RemoveInodeLocked(target));
  }
  dst_dir->children[dst_name] = node->ino;
  src_dir->children.erase(vfs::Basename(from));
  MUX_RETURN_IF_ERROR(WriteDirLocked(*dst_dir));
  if (src_dir != dst_dir) {
    MUX_RETURN_IF_ERROR(WriteDirLocked(*src_dir));
  }
  if (!extra.empty()) {
    MUX_RETURN_IF_ERROR(CommitLocked(std::move(extra)));
  }
  return Status::Ok();
}

Result<vfs::FileStat> ExtLite::Stat(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  st.allocated_bytes = node->mapping.size() * kBlockSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Result<std::vector<vfs::DirEntry>> ExtLite::ReadDir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * dir, ResolveDirLocked(path));
  std::vector<vfs::DirEntry> entries;
  entries.reserve(dir->children.size());
  for (const auto& [name, ino] : dir->children) {
    entries.push_back(vfs::DirEntry{name, inodes_[ino].type, ino});
  }
  return entries;
}

Result<uint64_t> ExtLite::Read(vfs::FileHandle handle, uint64_t offset,
                               uint64_t length, uint8_t* out) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kRead));
  if (offset >= node->size) {
    return uint64_t{0};
  }
  const uint64_t n = std::min(length, node->size - offset);

  OpenFile& of = open_files_.find(handle)->second;
  const uint64_t first_page = offset / kBlockSize;
  if (of.last_read_page != UINT64_MAX && first_page == of.last_read_page + 1 &&
      options_.readahead_pages > 0) {
    const uint64_t max_page = (node->size - 1) / kBlockSize;
    const uint64_t ra_count = std::min<uint64_t>(
        options_.readahead_pages,
        max_page >= first_page ? max_page - first_page + 1 : 0);
    if (ra_count > 0) {
      MUX_RETURN_IF_ERROR(cache_->ReadAhead(node->ino, first_page, ra_count));
    }
  }

  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kBlockSize;
    const uint64_t in_page = pos % kBlockSize;
    const uint64_t chunk = std::min(n - done, kBlockSize - in_page);
    MUX_RETURN_IF_ERROR(
        cache_->ReadThrough(node->ino, page, in_page, chunk, out + done));
    done += chunk;
  }
  of.last_read_page = (offset + n - 1) / kBlockSize;
  node->atime = TruncTime(clock_->Now());
  return n;
}

Result<uint64_t> ExtLite::Write(vfs::FileHandle handle, uint64_t offset,
                                const uint8_t* data, uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return uint64_t{0};
  }
  // Delayed allocation: reserve space now, pick blocks at writeback.
  for (uint64_t page = offset / kBlockSize;
       page <= (offset + length - 1) / kBlockSize; ++page) {
    if (LookupBlockLocked(*node, page) != 0 ||
        node->delalloc.contains(page)) {
      continue;
    }
    if (delalloc_reserved_ + 1 > free_blocks_) {
      return NoSpaceError("extlite device full (delalloc reservation)");
    }
    node->delalloc.insert(page);
    delalloc_reserved_++;
  }
  uint64_t done = 0;
  while (done < length) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kBlockSize;
    const uint64_t in_page = pos % kBlockSize;
    const uint64_t chunk = std::min(length - done, kBlockSize - in_page);
    MUX_RETURN_IF_ERROR(
        cache_->WriteThrough(node->ino, page, in_page, chunk, data + done));
    done += chunk;
  }
  node->size = std::max(node->size, offset + length);
  node->mtime = TruncTime(clock_->Now());
  node->meta_dirty = true;
  return length;
}

Status ExtLite::TruncateLocked(MemInode& inode, uint64_t new_size) {
  if (new_size < inode.size) {
    const uint64_t first_dead = (new_size + kBlockSize - 1) / kBlockSize;
    cache_->InvalidateFrom(inode.ino, first_dead);
    for (auto it = inode.delalloc.lower_bound(first_dead);
         it != inode.delalloc.end();) {
      it = inode.delalloc.erase(it);
      delalloc_reserved_--;
    }
    if (new_size % kBlockSize != 0 &&
        (LookupBlockLocked(inode, new_size / kBlockSize) != 0 ||
         cache_->Resident(inode.ino, new_size / kBlockSize))) {
      std::vector<uint8_t> zeros(kBlockSize - new_size % kBlockSize, 0);
      MUX_RETURN_IF_ERROR(cache_->WriteThrough(inode.ino,
                                               new_size / kBlockSize,
                                               new_size % kBlockSize,
                                               zeros.size(), zeros.data()));
    }
    MUX_RETURN_IF_ERROR(UnmapFromLocked(inode, first_dead));
    inode.size = new_size;
    inode.mtime = TruncTime(clock_->Now());
    return CommitLocked({inode.ino});
  }
  inode.size = new_size;
  inode.mtime = TruncTime(clock_->Now());
  inode.meta_dirty = true;
  return Status::Ok();
}

Status ExtLite::Truncate(vfs::FileHandle handle, uint64_t new_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  return TruncateLocked(*node, new_size);
}

Status ExtLite::Fsync(vfs::FileHandle handle, bool data_only) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  // Ordered mode: data first, then the metadata commit.
  MUX_RETURN_IF_ERROR(cache_->FlushInode(node->ino));
  MUX_RETURN_IF_ERROR(device_->Flush());
  if (node->meta_dirty) {
    MUX_RETURN_IF_ERROR(CommitLocked({node->ino}));
  }
  return Status::Ok();
}

Status ExtLite::Fallocate(vfs::FileHandle handle, uint64_t offset,
                          uint64_t length, bool keep_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return InvalidArgumentError("zero-length fallocate");
  }
  std::vector<uint8_t> zeros(kBlockSize, 0);
  uint64_t last_disk = 0;
  for (uint64_t page = offset / kBlockSize;
       page <= (offset + length - 1) / kBlockSize; ++page) {
    if (LookupBlockLocked(*node, page) != 0) {
      continue;
    }
    const uint32_t hint = last_disk != 0
                              ? GroupOf(last_disk)
                              : GroupOf(InodeTableBlockOf(node->ino));
    MUX_ASSIGN_OR_RETURN(uint64_t disk,
                         AllocBlockLocked(hint, last_disk ? last_disk + 1 : 0));
    MUX_RETURN_IF_ERROR(device_->WriteBlocks(disk, 1, zeros.data()));
    MUX_RETURN_IF_ERROR(MapBlockLocked(*node, page, disk));
    if (node->delalloc.erase(page) > 0) {
      delalloc_reserved_--;
    }
    last_disk = disk;
  }
  if (!keep_size) {
    node->size = std::max(node->size, offset + length);
  }
  node->meta_dirty = true;
  return CommitLocked({node->ino});
}

Status ExtLite::PunchHole(vfs::FileHandle handle, uint64_t offset,
                          uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (offset % kBlockSize != 0 || length % kBlockSize != 0 || length == 0) {
    return InvalidArgumentError("hole punch must be block aligned");
  }
  const uint64_t first = offset / kBlockSize;
  const uint64_t last = first + length / kBlockSize;  // exclusive
  cache_->InvalidateRange(node->ino, first, length / kBlockSize);
  for (auto it = node->delalloc.lower_bound(first);
       it != node->delalloc.end() && *it < last;) {
    it = node->delalloc.erase(it);
    delalloc_reserved_--;
  }
  for (auto it = node->mapping.lower_bound(first);
       it != node->mapping.end() && it->first < last;) {
    MUX_RETURN_IF_ERROR(FreeBlockLocked(it->second));
    MUX_RETURN_IF_ERROR(TouchTreeLocked(*node, it->first));
    it = node->mapping.erase(it);
  }
  node->mtime = TruncTime(clock_->Now());
  node->meta_dirty = true;
  return CommitLocked({node->ino});
}

Result<vfs::FileStat> ExtLite::FStat(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  st.allocated_bytes = node->mapping.size() * kBlockSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Status ExtLite::SetAttr(vfs::FileHandle handle, const vfs::AttrUpdate& update) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  if (update.atime) {
    node->atime = TruncTime(*update.atime);
  }
  if (update.mtime) {
    node->mtime = TruncTime(*update.mtime);
  }
  if (update.mode) {
    node->mode = *update.mode;
  }
  if (!update.empty()) {
    node->meta_dirty = true;
  }
  return Status::Ok();
}

Result<vfs::FsStats> ExtLite::StatFs() {
  std::lock_guard<std::mutex> lock(mu_);
  vfs::FsStats st;
  st.capacity_bytes =
      (group_blocks_ - 2 - inode_blocks_per_group_) * options_.group_count *
      kBlockSize;
  st.free_bytes = (free_blocks_ - std::min(free_blocks_, delalloc_reserved_)) *
                  kBlockSize;
  st.total_inodes = max_inodes_;
  uint64_t used = 0;
  for (const MemInode& inode : inodes_) {
    used += inode.valid ? 1 : 0;
  }
  st.free_inodes = max_inodes_ - used;
  return st;
}

Status ExtLite::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_RETURN_IF_ERROR(cache_->FlushAll());
  MUX_RETURN_IF_ERROR(device_->Flush());
  std::vector<vfs::InodeNum> dirty;
  for (const MemInode& inode : inodes_) {
    if (inode.valid && inode.meta_dirty) {
      dirty.push_back(inode.ino);
    }
  }
  if (!dirty.empty() || !dirty_bitmap_blocks_.empty() ||
      !pending_revokes_.empty()) {
    MUX_RETURN_IF_ERROR(CommitLocked(std::move(dirty)));
  }
  // Clean sync: push journaled metadata home.
  return journal_->Checkpoint();
}

}  // namespace mux::fs
