// xfslite — an XFS-like extent-based journaling file system for SSDs.
//
// Design points carried over from XFS (USENIX '96), the properties the paper
// leans on when it picks XFS as the SSD tier:
//  * Extent-based mapping: contiguous file ranges map to contiguous disk
//    ranges, found by binary search.
//  * Allocation groups: free space is split into AGs, each with a dual-index
//    free-extent structure (by-start / by-size, the bnobt/cntbt analogue);
//    files stick to an AG for locality until it fills.
//  * Delayed allocation: buffered writes accumulate in the DRAM page cache;
//    disk extents are only allocated at writeback, producing large
//    contiguous extents for sequential writes.
//  * Metadata journaling: inode and directory updates are committed through
//    a JBD-style journal; data writeback happens before the metadata commit
//    (ordered semantics), so fsync is crash-consistent.
#ifndef MUX_FS_XFSLITE_XFSLITE_H_
#define MUX_FS_XFSLITE_XFSLITE_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/device/block_device.h"
#include "src/fs/fscommon/extent_allocator.h"
#include "src/fs/fscommon/journal.h"
#include "src/fs/fscommon/page_cache.h"
#include "src/fs/xfslite/layout.h"
#include "src/vfs/file_system.h"

namespace mux::fs {

class XfsLite : public vfs::FileSystem {
 public:
  struct Options {
    uint64_t journal_blocks = 256;
    uint64_t inode_table_blocks = 0;  // 0: total_blocks/512 (>= 1)
    uint32_t ag_count = 4;
    uint64_t page_cache_pages = 4096;  // 16 MiB default
    SimTime op_software_ns = 350;
    uint32_t readahead_pages = 8;
  };

  XfsLite(device::BlockDevice* device, SimClock* clock, Options options);
  XfsLite(device::BlockDevice* device, SimClock* clock);
  ~XfsLite() override;

  Status Format();
  Status Mount();

  std::string_view Name() const override { return "xfslite"; }

  Result<vfs::FileHandle> Open(const std::string& path, uint32_t flags,
                               uint32_t mode = 0644) override;
  Status Close(vfs::FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<vfs::FileStat> Stat(const std::string& path) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;

  Result<uint64_t> Read(vfs::FileHandle handle, uint64_t offset,
                        uint64_t length, uint8_t* out) override;
  Result<uint64_t> Write(vfs::FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  Status Truncate(vfs::FileHandle handle, uint64_t new_size) override;
  Status Fsync(vfs::FileHandle handle, bool data_only) override;
  Status Fallocate(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(vfs::FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<vfs::FileStat> FStat(vfs::FileHandle handle) override;
  Status SetAttr(vfs::FileHandle handle,
                 const vfs::AttrUpdate& update) override;

  Result<vfs::FsStats> StatFs() override;
  Status Sync() override;

  // Diagnostics.
  PageCacheStats CacheStats() const { return cache_->stats(); }
  JournalStats GetJournalStats() const { return journal_->stats(); }
  uint64_t ExtentCountOf(const std::string& path);

 private:
  struct Extent {
    uint64_t file_block = 0;
    uint64_t disk_block = 0;
    uint32_t length = 0;  // blocks
    uint64_t file_end() const { return file_block + length; }
  };

  struct MemInode {
    vfs::InodeNum ino = vfs::kInvalidInode;
    bool valid = false;
    vfs::FileType type = vfs::FileType::kRegular;
    uint32_t mode = 0644;
    uint64_t size = 0;
    SimTime atime = 0;
    SimTime mtime = 0;
    SimTime ctime = 0;
    uint32_t ag_hint = 0;
    std::vector<uint64_t> overflow_chain;  // allocated lazily on spill
    std::vector<Extent> extents;  // sorted by file_block, non-overlapping
    // Directories: DRAM view of dentry records (rebuilt at mount).
    std::map<std::string, vfs::InodeNum> children;
    bool meta_dirty = false;  // DRAM inode differs from on-disk copy
  };

  struct OpenFile {
    vfs::InodeNum ino = vfs::kInvalidInode;
    uint32_t flags = 0;
    uint64_t last_read_page = UINT64_MAX;  // sequential-read detector
  };

  // BackingStore bridge for the page cache.
  class CacheStore;

  // --- extent map helpers (mu_ held) -----------------------------------
  // Disk block for a file block, or 0 when in a hole.
  uint64_t LookupBlockLocked(const MemInode& inode, uint64_t file_block) const;
  // Inserts a single-block mapping, merging with neighbours.
  Status InsertMappingLocked(MemInode& inode, uint64_t file_block,
                             uint64_t disk_block);
  // Both collect freed blocks into pending_revokes_ when the inode is a
  // directory (directory data blocks are journaled and must be revoked on
  // free; plain file data never enters the journal).
  Status FreeExtentsFromLocked(MemInode& inode, uint64_t first_dead_block);
  Status FreeExtentsInRangeLocked(MemInode& inode, uint64_t first,
                                  uint64_t count);
  void NoteFreedLocked(const MemInode& inode, uint64_t disk_block,
                       uint64_t count);

  // --- allocation (mu_ held) -------------------------------------------
  Result<uint64_t> AllocBlockLocked(MemInode& inode, uint64_t file_block);
  uint32_t AgOf(uint64_t disk_block) const;
  Status FreeDiskRunLocked(uint64_t disk_block, uint64_t count);

  // --- inode persistence (mu_ held) -------------------------------------
  uint64_t InodeTableBlockOf(vfs::InodeNum ino) const;
  void SerializeInodeBlockLocked(uint64_t table_block, uint8_t* out) const;
  void SerializeOverflowLocked(const MemInode& inode, size_t chain_index,
                               uint8_t* out) const;
  // Journals the inode (and its overflow chain when present) in `tx`.
  Status LogInodeLocked(Journal::Tx* tx, MemInode& inode);
  Status CommitInodesLocked(std::vector<vfs::InodeNum> inos);

  // --- directories (mu_ held) -------------------------------------------
  Status WriteDirLocked(MemInode& dir);  // serializes children -> data blocks
  Status LoadDirLocked(MemInode& dir);

  // --- namespace (mu_ held) ---------------------------------------------
  Result<MemInode*> ResolveLocked(const std::string& path);
  Result<MemInode*> ResolveDirLocked(const std::string& path);
  Result<MemInode*> HandleInodeLocked(vfs::FileHandle handle,
                                      uint32_t needed_flags);
  Result<MemInode*> AllocInodeLocked(vfs::FileType type, uint32_t mode);
  Status RemoveInodeLocked(MemInode& inode);
  Status TruncateLocked(MemInode& inode, uint64_t new_size);
  Status FsyncInodeLocked(MemInode& inode, bool data_only);

  void ChargeOp() const { clock_->Advance(options_.op_software_ns); }

  device::BlockDevice* const device_;
  SimClock* const clock_;
  const Options options_;

  uint64_t total_blocks_ = 0;
  uint64_t inode_table_first_ = 0;
  uint64_t inode_table_blocks_ = 0;
  uint64_t max_inodes_ = 0;
  uint64_t data_first_ = 0;

  mutable std::mutex mu_;
  std::vector<MemInode> inodes_;  // indexed by ino; slot 0 unused
  std::unordered_map<vfs::FileHandle, OpenFile> open_files_;
  std::vector<ExtentAllocator> ags_;
  uint64_t ag_size_ = 0;
  uint32_t next_ag_ = 0;  // round-robin inode placement
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<CacheStore> cache_store_;
  std::unique_ptr<PageCache> cache_;
  // Freed journaled blocks awaiting a revoke record in the next commit.
  // Their allocator space is released only after the revoke is durable
  // (JBD2 defers freed-block reuse the same way), so a crash can never
  // replay stale journal content over a reused block.
  std::set<uint64_t> pending_revokes_;
  std::vector<std::pair<uint64_t, uint64_t>> deferred_frees_;  // (block, n)
  vfs::FileHandle next_handle_ = 1;
  bool mounted_ = false;
};

}  // namespace mux::fs

#endif  // MUX_FS_XFSLITE_XFSLITE_H_
