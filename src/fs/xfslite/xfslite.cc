#include "src/fs/xfslite/xfslite.h"

#include <algorithm>
#include <cstring>

#include "src/common/checksum.h"
#include "src/common/encoding.h"
#include "src/common/logging.h"
#include "src/vfs/path.h"

namespace mux::fs {

using xfs::DentryOffsets;
using xfs::InodeOffsets;
using xfs::SuperOffsets;
using xfs::kBlockSize;
using xfs::kDentrySize;
using xfs::kExtentRecordSize;
using xfs::kInlineExtents;
using xfs::kInodeSlotSize;
using xfs::kInodesPerBlock;
using xfs::kMaxExtents;
using xfs::kMaxOverflowBlocks;
using xfs::kOverflowHeader;
using xfs::kOverflowPerBlock;
using xfs::kRootIno;

// BackingStore bridge. All PageCache traffic originates while mu_ is held,
// so these callbacks run under the file-system lock and may touch inode
// state directly. StorePage is where delayed allocation happens.
class XfsLite::CacheStore : public BackingStore {
 public:
  explicit CacheStore(XfsLite* fs) : fs_(fs) {}

  Status LoadPage(vfs::InodeNum ino, uint64_t page, uint8_t* out) override {
    MemInode& inode = fs_->inodes_[ino];
    const uint64_t disk = fs_->LookupBlockLocked(inode, page);
    if (disk == 0) {
      std::memset(out, 0, kBlockSize);  // hole
      return Status::Ok();
    }
    return fs_->device_->ReadBlocks(disk, 1, out);
  }

  Status StorePage(vfs::InodeNum ino, uint64_t page,
                   const uint8_t* data) override {
    return StorePages(ino, page, 1, data);
  }

  // Clustered writeback: allocate any missing mappings (delayed allocation)
  // and issue one device write per contiguous disk run.
  Status StorePages(vfs::InodeNum ino, uint64_t first_page, uint64_t count,
                    const uint8_t* data) override {
    MemInode& inode = fs_->inodes_[ino];
    for (uint64_t i = 0; i < count; ++i) {
      if (fs_->LookupBlockLocked(inode, first_page + i) == 0) {
        MUX_ASSIGN_OR_RETURN(uint64_t disk,
                             fs_->AllocBlockLocked(inode, first_page + i));
        MUX_RETURN_IF_ERROR(
            fs_->InsertMappingLocked(inode, first_page + i, disk));
        inode.meta_dirty = true;
      }
    }
    uint64_t i = 0;
    while (i < count) {
      const uint64_t disk = fs_->LookupBlockLocked(inode, first_page + i);
      uint64_t run = 1;
      while (i + run < count &&
             fs_->LookupBlockLocked(inode, first_page + i + run) ==
                 disk + run) {
        ++run;
      }
      MUX_RETURN_IF_ERROR(fs_->device_->WriteBlocks(
          disk, static_cast<uint32_t>(run), data + i * kBlockSize));
      i += run;
    }
    return Status::Ok();
  }

 private:
  XfsLite* const fs_;
};

XfsLite::XfsLite(device::BlockDevice* device, SimClock* clock)
    : XfsLite(device, clock, Options()) {}

XfsLite::XfsLite(device::BlockDevice* device, SimClock* clock, Options options)
    : device_(device), clock_(clock), options_(options) {
  total_blocks_ = device_->capacity_blocks();
  inode_table_blocks_ = options_.inode_table_blocks != 0
                            ? options_.inode_table_blocks
                            : std::max<uint64_t>(1, total_blocks_ / 512);
  inode_table_first_ = xfs::kJournalFirstBlock + options_.journal_blocks;
  max_inodes_ = inode_table_blocks_ * kInodesPerBlock;
  data_first_ = inode_table_first_ + inode_table_blocks_;
  MUX_CHECK(data_first_ + options_.ag_count <= total_blocks_)
      << "device too small for xfslite";
  ag_size_ = (total_blocks_ - data_first_) / options_.ag_count;
  journal_ = std::make_unique<Journal>(device_, xfs::kJournalFirstBlock,
                                       options_.journal_blocks);
  cache_store_ = std::make_unique<CacheStore>(this);
  cache_ = std::make_unique<PageCache>(cache_store_.get(), clock_,
                                       options_.page_cache_pages);
}

XfsLite::~XfsLite() {
  if (mounted_) {
    (void)Sync();
  }
}

// ---- extent map helpers ---------------------------------------------------

uint64_t XfsLite::LookupBlockLocked(const MemInode& inode,
                                    uint64_t file_block) const {
  // Last extent whose file_block <= target.
  auto it = std::upper_bound(
      inode.extents.begin(), inode.extents.end(), file_block,
      [](uint64_t v, const Extent& e) { return v < e.file_block; });
  if (it == inode.extents.begin()) {
    return 0;
  }
  --it;
  if (file_block < it->file_end()) {
    return it->disk_block + (file_block - it->file_block);
  }
  return 0;
}

Status XfsLite::InsertMappingLocked(MemInode& inode, uint64_t file_block,
                                    uint64_t disk_block) {
  auto it = std::upper_bound(
      inode.extents.begin(), inode.extents.end(), file_block,
      [](uint64_t v, const Extent& e) { return v < e.file_block; });
  // Try to extend the preceding extent.
  if (it != inode.extents.begin()) {
    auto prev = std::prev(it);
    if (prev->file_end() == file_block &&
        prev->disk_block + prev->length == disk_block) {
      prev->length++;
      // Possibly merge with the following extent.
      if (it != inode.extents.end() && prev->file_end() == it->file_block &&
          prev->disk_block + prev->length == it->disk_block) {
        prev->length += it->length;
        inode.extents.erase(it);
      }
      return Status::Ok();
    }
    if (file_block < prev->file_end()) {
      return InternalError("mapping already present");
    }
  }
  // Try to prepend to the following extent.
  if (it != inode.extents.end() && it->file_block == file_block + 1 &&
      it->disk_block == disk_block + 1) {
    it->file_block--;
    it->disk_block--;
    it->length++;
    return Status::Ok();
  }
  if (inode.extents.size() >= kMaxExtents) {
    return NoSpaceError("file exceeds extent limit (fragmentation)");
  }
  inode.extents.insert(it, Extent{file_block, disk_block, 1});
  return Status::Ok();
}

void XfsLite::NoteFreedLocked(const MemInode& inode, uint64_t disk_block,
                              uint64_t count) {
  if (inode.type != vfs::FileType::kDirectory) {
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    pending_revokes_.insert(disk_block + i);
  }
  deferred_frees_.emplace_back(disk_block, count);
}

Status XfsLite::FreeExtentsFromLocked(MemInode& inode,
                                      uint64_t first_dead_block) {
  for (auto it = inode.extents.begin(); it != inode.extents.end();) {
    if (it->file_end() <= first_dead_block) {
      ++it;
      continue;
    }
    const bool deferred = inode.type == vfs::FileType::kDirectory;
    if (it->file_block >= first_dead_block) {
      if (deferred) {
        NoteFreedLocked(inode, it->disk_block, it->length);
      } else {
        MUX_RETURN_IF_ERROR(FreeDiskRunLocked(it->disk_block, it->length));
      }
      it = inode.extents.erase(it);
    } else {
      const uint64_t keep = first_dead_block - it->file_block;
      if (deferred) {
        NoteFreedLocked(inode, it->disk_block + keep, it->length - keep);
      } else {
        MUX_RETURN_IF_ERROR(
            FreeDiskRunLocked(it->disk_block + keep, it->length - keep));
      }
      it->length = static_cast<uint32_t>(keep);
      ++it;
    }
  }
  return Status::Ok();
}

Status XfsLite::FreeExtentsInRangeLocked(MemInode& inode, uint64_t first,
                                         uint64_t count) {
  const uint64_t last = first + count;  // exclusive
  std::vector<Extent> rebuilt;
  rebuilt.reserve(inode.extents.size() + 1);
  for (const Extent& e : inode.extents) {
    const uint64_t lo = std::max(e.file_block, first);
    const uint64_t hi = std::min(e.file_end(), last);
    if (lo >= hi) {
      rebuilt.push_back(e);
      continue;
    }
    if (e.file_block < lo) {
      rebuilt.push_back(Extent{e.file_block, e.disk_block,
                               static_cast<uint32_t>(lo - e.file_block)});
    }
    if (inode.type == vfs::FileType::kDirectory) {
      NoteFreedLocked(inode, e.disk_block + (lo - e.file_block), hi - lo);
    } else {
      MUX_RETURN_IF_ERROR(
          FreeDiskRunLocked(e.disk_block + (lo - e.file_block), hi - lo));
    }
    if (hi < e.file_end()) {
      rebuilt.push_back(Extent{hi, e.disk_block + (hi - e.file_block),
                               static_cast<uint32_t>(e.file_end() - hi)});
    }
  }
  if (rebuilt.size() > kMaxExtents) {
    return NoSpaceError("hole punch exceeds extent limit");
  }
  inode.extents = std::move(rebuilt);
  inode.meta_dirty = true;
  return Status::Ok();
}

// ---- allocation ------------------------------------------------------------

uint32_t XfsLite::AgOf(uint64_t disk_block) const {
  const uint64_t idx = (disk_block - data_first_) / ag_size_;
  return static_cast<uint32_t>(
      std::min<uint64_t>(idx, options_.ag_count - 1));
}

Result<uint64_t> XfsLite::AllocBlockLocked(MemInode& inode,
                                           uint64_t file_block) {
  // Locality: try right after the disk block of the previous file block.
  if (file_block > 0) {
    const uint64_t prev = LookupBlockLocked(inode, file_block - 1);
    if (prev != 0) {
      auto near = ags_[AgOf(prev)].AllocNear(prev + 1, 1);
      if (near.ok()) {
        return *near;
      }
    }
  }
  // Otherwise the inode's AG, then round-robin over the rest.
  for (uint32_t i = 0; i < options_.ag_count; ++i) {
    const uint32_t ag = (inode.ag_hint + i) % options_.ag_count;
    auto r = ags_[ag].AllocContiguous(1);
    if (r.ok()) {
      return *r;
    }
  }
  return NoSpaceError("all allocation groups full");
}

Status XfsLite::FreeDiskRunLocked(uint64_t disk_block, uint64_t count) {
  // A run may span AG boundaries (rare); split it.
  while (count > 0) {
    const uint32_t ag = AgOf(disk_block);
    const uint64_t ag_end = ag + 1 == options_.ag_count
                                ? total_blocks_
                                : data_first_ + (ag + 1) * ag_size_;
    const uint64_t here = std::min(count, ag_end - disk_block);
    MUX_RETURN_IF_ERROR(ags_[ag].Free(disk_block, here));
    disk_block += here;
    count -= here;
  }
  return Status::Ok();
}

// ---- inode persistence ------------------------------------------------------

uint64_t XfsLite::InodeTableBlockOf(vfs::InodeNum ino) const {
  return inode_table_first_ + ino / kInodesPerBlock;
}

void XfsLite::SerializeInodeBlockLocked(uint64_t table_block,
                                        uint8_t* out) const {
  std::memset(out, 0, kBlockSize);
  const uint64_t first_ino = (table_block - inode_table_first_) *
                             kInodesPerBlock;
  for (uint64_t i = 0; i < kInodesPerBlock; ++i) {
    const uint64_t ino = first_ino + i;
    if (ino >= inodes_.size() || !inodes_[ino].valid) {
      continue;
    }
    const MemInode& inode = inodes_[ino];
    uint8_t* slot = out + i * kInodeSlotSize;
    slot[InodeOffsets::kValid] = 1;
    slot[InodeOffsets::kType] =
        inode.type == vfs::FileType::kDirectory ? 1 : 0;
    Put16(slot + InodeOffsets::kExtentCount,
          static_cast<uint16_t>(inode.extents.size()));
    Put32(slot + InodeOffsets::kMode, inode.mode);
    Put64(slot + InodeOffsets::kSize, inode.size);
    Put64(slot + InodeOffsets::kAtime, inode.atime);
    Put64(slot + InodeOffsets::kMtime, inode.mtime);
    Put64(slot + InodeOffsets::kCtime, inode.ctime);
    Put64(slot + InodeOffsets::kOverflowBlock,
          inode.overflow_chain.empty() ? 0 : inode.overflow_chain.front());
    Put32(slot + InodeOffsets::kAgHint, inode.ag_hint);
    const size_t inline_count =
        std::min<size_t>(inode.extents.size(), kInlineExtents);
    for (size_t e = 0; e < inline_count; ++e) {
      uint8_t* rec = slot + InodeOffsets::kExtents + e * kExtentRecordSize;
      Put64(rec, inode.extents[e].file_block);
      Put64(rec + 8, inode.extents[e].disk_block);
      Put32(rec + 16, inode.extents[e].length);
    }
  }
}

void XfsLite::SerializeOverflowLocked(const MemInode& inode,
                                      size_t chain_index,
                                      uint8_t* out) const {
  std::memset(out, 0, kBlockSize);
  const size_t spill =
      inode.extents.size() > kInlineExtents
          ? inode.extents.size() - kInlineExtents
          : 0;
  const size_t first = chain_index * kOverflowPerBlock;
  const size_t here = std::min<size_t>(kOverflowPerBlock,
                                       spill > first ? spill - first : 0);
  Put64(out, chain_index + 1 < inode.overflow_chain.size()
                 ? inode.overflow_chain[chain_index + 1]
                 : 0);
  Put64(out + 8, here);
  for (size_t e = 0; e < here; ++e) {
    uint8_t* rec = out + kOverflowHeader + e * kExtentRecordSize;
    const Extent& ext = inode.extents[kInlineExtents + first + e];
    Put64(rec, ext.file_block);
    Put64(rec + 8, ext.disk_block);
    Put32(rec + 16, ext.length);
  }
}

Status XfsLite::LogInodeLocked(Journal::Tx* tx, MemInode& inode) {
  // Size the overflow chain to the spill (grow and shrink as needed).
  const size_t spill = inode.extents.size() > kInlineExtents
                           ? inode.extents.size() - kInlineExtents
                           : 0;
  const size_t chain_needed = (spill + kOverflowPerBlock - 1) /
                              kOverflowPerBlock;
  if (chain_needed > kMaxOverflowBlocks) {
    return NoSpaceError("file exceeds extent limit (fragmentation)");
  }
  while (inode.overflow_chain.size() < chain_needed) {
    MUX_ASSIGN_OR_RETURN(uint64_t blk,
                         ags_[inode.ag_hint % options_.ag_count]
                             .AllocContiguous(1));
    inode.overflow_chain.push_back(blk);
  }
  while (inode.overflow_chain.size() > chain_needed) {
    tx->RevokeBlock(inode.overflow_chain.back());
    deferred_frees_.emplace_back(inode.overflow_chain.back(), 1);
    inode.overflow_chain.pop_back();
  }
  std::vector<uint8_t> block(kBlockSize);
  SerializeInodeBlockLocked(InodeTableBlockOf(inode.ino), block.data());
  tx->LogBlock(InodeTableBlockOf(inode.ino), block.data(), kBlockSize);
  for (size_t i = 0; i < inode.overflow_chain.size(); ++i) {
    SerializeOverflowLocked(inode, i, block.data());
    tx->LogBlock(inode.overflow_chain[i], block.data(), kBlockSize);
  }
  return Status::Ok();
}

Status XfsLite::CommitInodesLocked(std::vector<vfs::InodeNum> inos) {
  auto tx = journal_->Begin();
  for (vfs::InodeNum ino : inos) {
    MUX_RETURN_IF_ERROR(LogInodeLocked(tx.get(), inodes_[ino]));
  }
  for (uint64_t revoked : pending_revokes_) {
    tx->RevokeBlock(revoked);
  }
  MUX_RETURN_IF_ERROR(journal_->Commit(std::move(tx)));
  pending_revokes_.clear();
  // Revokes are durable: the freed blocks may now be reused.
  for (const auto& [block, count] : deferred_frees_) {
    MUX_RETURN_IF_ERROR(FreeDiskRunLocked(block, count));
  }
  deferred_frees_.clear();
  for (vfs::InodeNum ino : inos) {
    inodes_[ino].meta_dirty = false;
  }
  return Status::Ok();
}

// ---- directories ------------------------------------------------------------

Status XfsLite::WriteDirLocked(MemInode& dir) {
  // Serialize all dentries, (re)allocate data blocks eagerly, and journal
  // both the dir data blocks and the dir inode in one transaction.
  const uint64_t bytes = dir.children.size() * kDentrySize;
  const uint64_t blocks = (bytes + kBlockSize - 1) / kBlockSize;

  // Grow the mapping if needed.
  for (uint64_t b = 0; b < blocks; ++b) {
    if (LookupBlockLocked(dir, b) == 0) {
      MUX_ASSIGN_OR_RETURN(uint64_t disk, AllocBlockLocked(dir, b));
      MUX_RETURN_IF_ERROR(InsertMappingLocked(dir, b, disk));
    }
  }
  // Shrink if the directory lost blocks.
  MUX_RETURN_IF_ERROR(FreeExtentsFromLocked(dir, blocks));

  auto tx = journal_->Begin();
  std::vector<uint8_t> block(kBlockSize, 0);
  uint64_t b = 0;
  size_t in_block = 0;
  std::memset(block.data(), 0, kBlockSize);
  for (const auto& [name, ino] : dir.children) {
    uint8_t* rec = block.data() + in_block * kDentrySize;
    Put64(rec + DentryOffsets::kIno, ino);
    rec[DentryOffsets::kNameLen] = static_cast<uint8_t>(name.size());
    std::memcpy(rec + DentryOffsets::kName, name.data(), name.size());
    if (++in_block == kBlockSize / kDentrySize) {
      tx->LogBlock(LookupBlockLocked(dir, b), block.data(), kBlockSize);
      std::memset(block.data(), 0, kBlockSize);
      in_block = 0;
      ++b;
    }
  }
  if (in_block > 0) {
    tx->LogBlock(LookupBlockLocked(dir, b), block.data(), kBlockSize);
  }
  dir.size = bytes;
  dir.mtime = clock_->Now();
  MUX_RETURN_IF_ERROR(LogInodeLocked(tx.get(), dir));
  for (uint64_t revoked : pending_revokes_) {
    tx->RevokeBlock(revoked);
  }
  MUX_RETURN_IF_ERROR(journal_->Commit(std::move(tx)));
  pending_revokes_.clear();
  for (const auto& [block, count] : deferred_frees_) {
    MUX_RETURN_IF_ERROR(FreeDiskRunLocked(block, count));
  }
  deferred_frees_.clear();
  dir.meta_dirty = false;
  return Status::Ok();
}

Status XfsLite::LoadDirLocked(MemInode& dir) {
  dir.children.clear();
  const uint64_t blocks = (dir.size + kBlockSize - 1) / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t disk = LookupBlockLocked(dir, b);
    if (disk == 0) {
      return CorruptionError("directory data block missing");
    }
    MUX_RETURN_IF_ERROR(device_->ReadBlocks(disk, 1, block.data()));
    for (size_t i = 0; i < kBlockSize / kDentrySize; ++i) {
      const uint8_t* rec = block.data() + i * kDentrySize;
      const vfs::InodeNum ino = Get64(rec + DentryOffsets::kIno);
      if (ino == 0) {
        continue;
      }
      const uint8_t name_len = rec[DentryOffsets::kNameLen];
      if (name_len == 0 || name_len > xfs::kMaxNameLen) {
        return CorruptionError("bad dentry name length");
      }
      dir.children.emplace(
          std::string(reinterpret_cast<const char*>(rec + DentryOffsets::kName),
                      name_len),
          ino);
    }
  }
  return Status::Ok();
}

// ---- format / mount ---------------------------------------------------------

Status XfsLite::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  inodes_.assign(max_inodes_, MemInode{});
  open_files_.clear();
  ags_.clear();
  for (uint32_t ag = 0; ag < options_.ag_count; ++ag) {
    const uint64_t start = data_first_ + static_cast<uint64_t>(ag) * ag_size_;
    const uint64_t len =
        ag + 1 == options_.ag_count ? total_blocks_ - start : ag_size_;
    ags_.emplace_back(start, len);
  }

  std::vector<uint8_t> super(kBlockSize, 0);
  Put32(super.data() + SuperOffsets::kMagic, xfs::kSuperMagic);
  Put64(super.data() + SuperOffsets::kTotalBlocks, total_blocks_);
  Put64(super.data() + SuperOffsets::kJournalBlocks, options_.journal_blocks);
  Put64(super.data() + SuperOffsets::kInodeBlocks, inode_table_blocks_);
  Put32(super.data() + SuperOffsets::kAgCount, options_.ag_count);
  Put32(super.data() + SuperOffsets::kCrc,
        Crc32c(super.data(), SuperOffsets::kCrc));
  MUX_RETURN_IF_ERROR(device_->WriteBlocks(xfs::kSuperBlock, 1, super.data()));

  MUX_RETURN_IF_ERROR(journal_->Format());

  // Zero the inode table.
  std::vector<uint8_t> zero(kBlockSize, 0);
  for (uint64_t b = 0; b < inode_table_blocks_; ++b) {
    MUX_RETURN_IF_ERROR(
        device_->WriteBlocks(inode_table_first_ + b, 1, zero.data()));
  }
  MUX_RETURN_IF_ERROR(device_->Flush());

  // Root directory.
  MemInode& root = inodes_[kRootIno];
  root.ino = kRootIno;
  root.valid = true;
  root.type = vfs::FileType::kDirectory;
  root.mode = 0755;
  root.ctime = root.mtime = root.atime = clock_->Now();
  MUX_RETURN_IF_ERROR(CommitInodesLocked({kRootIno}));
  mounted_ = true;
  return Status::Ok();
}

Status XfsLite::Mount() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_->Reset();  // a fresh mount must not serve pre-mount cache pages
  std::vector<uint8_t> super(kBlockSize);
  MUX_RETURN_IF_ERROR(device_->ReadBlocks(xfs::kSuperBlock, 1, super.data()));
  if (Get32(super.data() + SuperOffsets::kMagic) != xfs::kSuperMagic) {
    return CorruptionError("xfslite superblock magic mismatch");
  }
  if (Get32(super.data() + SuperOffsets::kCrc) !=
      Crc32c(super.data(), SuperOffsets::kCrc)) {
    return CorruptionError("xfslite superblock checksum mismatch");
  }
  if (Get64(super.data() + SuperOffsets::kTotalBlocks) != total_blocks_ ||
      Get64(super.data() + SuperOffsets::kJournalBlocks) !=
          options_.journal_blocks ||
      Get64(super.data() + SuperOffsets::kInodeBlocks) !=
          inode_table_blocks_ ||
      Get32(super.data() + SuperOffsets::kAgCount) != options_.ag_count) {
    return CorruptionError("xfslite geometry mismatch");
  }

  MUX_RETURN_IF_ERROR(journal_->Recover());

  inodes_.assign(max_inodes_, MemInode{});
  open_files_.clear();
  ags_.clear();
  for (uint32_t ag = 0; ag < options_.ag_count; ++ag) {
    const uint64_t start = data_first_ + static_cast<uint64_t>(ag) * ag_size_;
    const uint64_t len =
        ag + 1 == options_.ag_count ? total_blocks_ - start : ag_size_;
    ags_.emplace_back(start, len);
  }

  std::vector<uint8_t> block(kBlockSize);
  std::vector<uint8_t> overflow(kBlockSize);
  for (uint64_t b = 0; b < inode_table_blocks_; ++b) {
    MUX_RETURN_IF_ERROR(
        device_->ReadBlocks(inode_table_first_ + b, 1, block.data()));
    for (uint64_t i = 0; i < kInodesPerBlock; ++i) {
      const uint8_t* slot = block.data() + i * kInodeSlotSize;
      if (slot[InodeOffsets::kValid] != 1) {
        continue;
      }
      const vfs::InodeNum ino = b * kInodesPerBlock + i;
      MemInode& inode = inodes_[ino];
      inode.ino = ino;
      inode.valid = true;
      inode.type = slot[InodeOffsets::kType] == 1 ? vfs::FileType::kDirectory
                                                  : vfs::FileType::kRegular;
      inode.mode = Get32(slot + InodeOffsets::kMode);
      inode.size = Get64(slot + InodeOffsets::kSize);
      inode.atime = Get64(slot + InodeOffsets::kAtime);
      inode.mtime = Get64(slot + InodeOffsets::kMtime);
      inode.ctime = Get64(slot + InodeOffsets::kCtime);
      const uint64_t first_overflow =
          Get64(slot + InodeOffsets::kOverflowBlock);
      inode.ag_hint = Get32(slot + InodeOffsets::kAgHint);
      const uint16_t extent_count = Get16(slot + InodeOffsets::kExtentCount);
      const size_t inline_count =
          std::min<size_t>(extent_count, kInlineExtents);
      for (size_t e = 0; e < inline_count; ++e) {
        const uint8_t* rec =
            slot + InodeOffsets::kExtents + e * kExtentRecordSize;
        inode.extents.push_back(
            Extent{Get64(rec), Get64(rec + 8), Get32(rec + 16)});
      }
      if (extent_count > kInlineExtents) {
        if (first_overflow == 0) {
          return CorruptionError("spilled inode without overflow chain");
        }
        uint64_t next = first_overflow;
        uint64_t remaining = extent_count - kInlineExtents;
        while (next != 0) {
          if (inode.overflow_chain.size() >= kMaxOverflowBlocks) {
            return CorruptionError("overflow chain too long");
          }
          inode.overflow_chain.push_back(next);
          MUX_RETURN_IF_ERROR(device_->ReadBlocks(next, 1, overflow.data()));
          next = Get64(overflow.data());
          const uint64_t here = Get64(overflow.data() + 8);
          if (here > kOverflowPerBlock || here > remaining) {
            return CorruptionError("overflow extent count mismatch");
          }
          for (uint64_t e = 0; e < here; ++e) {
            const uint8_t* rec =
                overflow.data() + kOverflowHeader + e * kExtentRecordSize;
            inode.extents.push_back(
                Extent{Get64(rec), Get64(rec + 8), Get32(rec + 16)});
          }
          remaining -= here;
        }
        if (remaining != 0) {
          return CorruptionError("overflow chain truncated");
        }
      }
      // Claim disk space.
      for (const Extent& ext : inode.extents) {
        uint64_t disk = ext.disk_block;
        uint64_t count = ext.length;
        while (count > 0) {
          const uint32_t ag = AgOf(disk);
          const uint64_t ag_end = ag + 1 == options_.ag_count
                                      ? total_blocks_
                                      : data_first_ + (ag + 1) * ag_size_;
          const uint64_t here = std::min(count, ag_end - disk);
          MUX_RETURN_IF_ERROR(ags_[ag].Reserve(disk, here));
          disk += here;
          count -= here;
        }
      }
      for (uint64_t chain_block : inode.overflow_chain) {
        MUX_RETURN_IF_ERROR(ags_[AgOf(chain_block)].Reserve(chain_block, 1));
      }
    }
  }
  if (!inodes_[kRootIno].valid) {
    return CorruptionError("xfslite root inode missing");
  }
  for (MemInode& inode : inodes_) {
    if (inode.valid && inode.type == vfs::FileType::kDirectory) {
      MUX_RETURN_IF_ERROR(LoadDirLocked(inode));
    }
  }
  mounted_ = true;
  return Status::Ok();
}

// ---- namespace helpers -------------------------------------------------------

Result<XfsLite::MemInode*> XfsLite::ResolveLocked(const std::string& path) {
  if (!vfs::IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  MemInode* cur = &inodes_[kRootIno];
  for (const auto& part : vfs::SplitPath(path)) {
    if (cur->type != vfs::FileType::kDirectory) {
      return NotDirError(path);
    }
    auto it = cur->children.find(part);
    if (it == cur->children.end()) {
      return NotFoundError(path);
    }
    if (it->second >= inodes_.size() || !inodes_[it->second].valid) {
      return CorruptionError("dentry points to invalid inode");
    }
    cur = &inodes_[it->second];
  }
  return cur;
}

Result<XfsLite::MemInode*> XfsLite::ResolveDirLocked(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  return node;
}

Result<XfsLite::MemInode*> XfsLite::HandleInodeLocked(vfs::FileHandle handle,
                                                      uint32_t needed_flags) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return BadHandleError("unknown handle");
  }
  if ((it->second.flags & needed_flags) != needed_flags) {
    return PermissionError("handle lacks required access mode");
  }
  MemInode& inode = inodes_[it->second.ino];
  if (!inode.valid) {
    return BadHandleError("file was removed");
  }
  return &inode;
}

Result<XfsLite::MemInode*> XfsLite::AllocInodeLocked(vfs::FileType type,
                                                     uint32_t mode) {
  for (vfs::InodeNum ino = kRootIno; ino < max_inodes_; ++ino) {
    if (!inodes_[ino].valid) {
      MemInode& inode = inodes_[ino];
      inode = MemInode{};
      inode.ino = ino;
      inode.valid = true;
      inode.type = type;
      inode.mode = mode;
      inode.ag_hint = next_ag_++ % options_.ag_count;
      inode.ctime = inode.mtime = inode.atime = clock_->Now();
      inode.meta_dirty = true;
      return &inode;
    }
  }
  return NoSpaceError("inode table full");
}

Status XfsLite::RemoveInodeLocked(MemInode& inode) {
  cache_->InvalidateInode(inode.ino);
  MUX_RETURN_IF_ERROR(FreeExtentsFromLocked(inode, 0));
  for (uint64_t chain_block : inode.overflow_chain) {
    pending_revokes_.insert(chain_block);  // chain blocks are journaled
    deferred_frees_.emplace_back(chain_block, 1);
  }
  inode = MemInode{};
  return Status::Ok();
}

// ---- public API ---------------------------------------------------------------

Result<vfs::FileHandle> XfsLite::Open(const std::string& path, uint32_t flags,
                                      uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  auto resolved = ResolveLocked(path);
  MemInode* node = nullptr;
  if (resolved.ok()) {
    if ((flags & vfs::OpenFlags::kExclusive) &&
        (flags & vfs::OpenFlags::kCreate)) {
      return ExistsError(path);
    }
    node = *resolved;
    if (node->type == vfs::FileType::kDirectory) {
      return IsDirError(path);
    }
    if (flags & vfs::OpenFlags::kTruncate) {
      MUX_RETURN_IF_ERROR(TruncateLocked(*node, 0));
    }
  } else if (resolved.status().code() == ErrorCode::kNotFound &&
             (flags & vfs::OpenFlags::kCreate)) {
    const std::string name = vfs::Basename(path);
    if (name.size() > xfs::kMaxNameLen) {
      return InvalidArgumentError("name too long: " + name);
    }
    MUX_ASSIGN_OR_RETURN(MemInode * parent,
                         ResolveDirLocked(vfs::Dirname(path)));
    MUX_ASSIGN_OR_RETURN(node, AllocInodeLocked(vfs::FileType::kRegular, mode));
    parent->children.emplace(name, node->ino);
    // One journaled transaction covers the new inode and the parent update.
    MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
    MUX_RETURN_IF_ERROR(CommitInodesLocked({node->ino}));
  } else {
    return resolved.status();
  }
  const vfs::FileHandle handle = next_handle_++;
  open_files_.emplace(handle, OpenFile{node->ino, flags, UINT64_MAX});
  return handle;
}

Status XfsLite::Close(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(handle) == 0) {
    return BadHandleError("close of unknown handle");
  }
  return Status::Ok();
}

Status XfsLite::Mkdir(const std::string& path, uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (!vfs::IsValidPath(path) || vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("invalid mkdir path: " + path);
  }
  if (ResolveLocked(path).ok()) {
    return ExistsError(path);
  }
  const std::string name = vfs::Basename(path);
  if (name.size() > xfs::kMaxNameLen) {
    return InvalidArgumentError("name too long: " + name);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       AllocInodeLocked(vfs::FileType::kDirectory, mode));
  parent->children.emplace(name, node->ino);
  MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
  return CommitInodesLocked({node->ino});
}

Status XfsLite::Rmdir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("cannot remove root");
  }
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  if (!node->children.empty()) {
    return NotEmptyError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  const vfs::InodeNum dead_ino = node->ino;
  parent->children.erase(vfs::Basename(path));
  MUX_RETURN_IF_ERROR(RemoveInodeLocked(*node));
  // Journal the freed inode slot together with the parent update.
  MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
  return CommitInodesLocked({dead_ino});
}

Status XfsLite::Unlink(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type == vfs::FileType::kDirectory) {
    return IsDirError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  const vfs::InodeNum dead_ino = node->ino;
  parent->children.erase(vfs::Basename(path));
  MUX_RETURN_IF_ERROR(RemoveInodeLocked(*node));
  MUX_RETURN_IF_ERROR(WriteDirLocked(*parent));
  return CommitInodesLocked({dead_ino});
}

Status XfsLite::Rename(const std::string& from, const std::string& to) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(from));
  if (!vfs::IsValidPath(to)) {
    return InvalidArgumentError("invalid rename target: " + to);
  }
  if (vfs::PathHasPrefix(to, from) &&
      vfs::NormalizePath(to) != vfs::NormalizePath(from)) {
    return InvalidArgumentError("cannot rename a directory into itself");
  }
  const std::string dst_name = vfs::Basename(to);
  if (dst_name.size() > xfs::kMaxNameLen) {
    return InvalidArgumentError("name too long: " + dst_name);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * src_dir, ResolveDirLocked(vfs::Dirname(from)));
  MUX_ASSIGN_OR_RETURN(MemInode * dst_dir, ResolveDirLocked(vfs::Dirname(to)));

  std::vector<vfs::InodeNum> extra_inodes;
  auto existing = dst_dir->children.find(dst_name);
  if (existing != dst_dir->children.end()) {
    MemInode& target = inodes_[existing->second];
    if (target.type == vfs::FileType::kDirectory && !target.children.empty()) {
      return NotEmptyError(to);
    }
    extra_inodes.push_back(target.ino);
    dst_dir->children.erase(existing);
    MUX_RETURN_IF_ERROR(RemoveInodeLocked(target));
  }
  dst_dir->children[dst_name] = node->ino;
  src_dir->children.erase(vfs::Basename(from));
  // Both directory updates must land; WriteDirLocked commits one tx per dir
  // (two txs: a crash between them can leave the file visible in both — the
  // same window ext4 has without the rename-dance; acceptable here).
  MUX_RETURN_IF_ERROR(WriteDirLocked(*dst_dir));
  if (src_dir != dst_dir) {
    MUX_RETURN_IF_ERROR(WriteDirLocked(*src_dir));
  }
  if (!extra_inodes.empty()) {
    MUX_RETURN_IF_ERROR(CommitInodesLocked(std::move(extra_inodes)));
  }
  return Status::Ok();
}

Result<vfs::FileStat> XfsLite::Stat(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  uint64_t blocks = 0;
  for (const Extent& e : node->extents) {
    blocks += e.length;
  }
  st.allocated_bytes = blocks * kBlockSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Result<std::vector<vfs::DirEntry>> XfsLite::ReadDir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * dir, ResolveDirLocked(path));
  std::vector<vfs::DirEntry> entries;
  entries.reserve(dir->children.size());
  for (const auto& [name, ino] : dir->children) {
    entries.push_back(vfs::DirEntry{name, inodes_[ino].type, ino});
  }
  return entries;
}

Result<uint64_t> XfsLite::Read(vfs::FileHandle handle, uint64_t offset,
                               uint64_t length, uint8_t* out) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kRead));
  if (offset >= node->size) {
    return uint64_t{0};
  }
  const uint64_t n = std::min(length, node->size - offset);

  // Sequential readahead.
  OpenFile& of = open_files_.find(handle)->second;
  const uint64_t first_page = offset / kBlockSize;
  if (of.last_read_page != UINT64_MAX && first_page == of.last_read_page + 1 &&
      options_.readahead_pages > 0) {
    const uint64_t max_page = (node->size - 1) / kBlockSize;
    const uint64_t ra_count = std::min<uint64_t>(
        options_.readahead_pages,
        max_page >= first_page ? max_page - first_page + 1 : 0);
    if (ra_count > 0) {
      MUX_RETURN_IF_ERROR(cache_->ReadAhead(node->ino, first_page, ra_count));
    }
  }

  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kBlockSize;
    const uint64_t in_page = pos % kBlockSize;
    const uint64_t chunk = std::min(n - done, kBlockSize - in_page);
    MUX_RETURN_IF_ERROR(
        cache_->ReadThrough(node->ino, page, in_page, chunk, out + done));
    done += chunk;
  }
  of.last_read_page = (offset + n - 1) / kBlockSize;
  node->atime = clock_->Now();
  return n;
}

Result<uint64_t> XfsLite::Write(vfs::FileHandle handle, uint64_t offset,
                                const uint8_t* data, uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return uint64_t{0};
  }
  // Space check: delayed allocation must not overcommit what the device can
  // hold (a real FS reserves "delalloc" space at write time the same way).
  uint64_t free_blocks = 0;
  for (const auto& ag : ags_) {
    free_blocks += ag.FreeUnits();
  }
  uint64_t new_pages = 0;
  for (uint64_t page = offset / kBlockSize;
       page <= (offset + length - 1) / kBlockSize; ++page) {
    if (LookupBlockLocked(*node, page) == 0) {
      ++new_pages;
    }
  }
  if (new_pages > free_blocks) {
    return NoSpaceError("xfslite device full");
  }
  uint64_t done = 0;
  while (done < length) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kBlockSize;
    const uint64_t in_page = pos % kBlockSize;
    const uint64_t chunk = std::min(length - done, kBlockSize - in_page);
    MUX_RETURN_IF_ERROR(
        cache_->WriteThrough(node->ino, page, in_page, chunk, data + done));
    done += chunk;
  }
  node->size = std::max(node->size, offset + length);
  node->mtime = clock_->Now();
  node->meta_dirty = true;
  return length;
}

Status XfsLite::TruncateLocked(MemInode& inode, uint64_t new_size) {
  if (new_size < inode.size) {
    const uint64_t first_dead = (new_size + kBlockSize - 1) / kBlockSize;
    cache_->InvalidateFrom(inode.ino, first_dead);
    // Zero the tail of the boundary page so re-extension reads zeros. The
    // page may exist only in cache (delayed allocation), only on disk, or
    // both — the cache write-through handles every case.
    if (new_size % kBlockSize != 0 &&
        (LookupBlockLocked(inode, new_size / kBlockSize) != 0 ||
         cache_->Resident(inode.ino, new_size / kBlockSize))) {
      std::vector<uint8_t> zeros(kBlockSize - new_size % kBlockSize, 0);
      MUX_RETURN_IF_ERROR(cache_->WriteThrough(inode.ino,
                                               new_size / kBlockSize,
                                               new_size % kBlockSize,
                                               zeros.size(), zeros.data()));
    }
    MUX_RETURN_IF_ERROR(FreeExtentsFromLocked(inode, first_dead));
    inode.size = new_size;
    inode.mtime = clock_->Now();
    // Freeing must be journaled before the blocks can be reused (see
    // DESIGN.md on delayed allocation vs. eager free).
    return CommitInodesLocked({inode.ino});
  }
  inode.size = new_size;
  inode.mtime = clock_->Now();
  inode.meta_dirty = true;
  return Status::Ok();
}

Status XfsLite::Truncate(vfs::FileHandle handle, uint64_t new_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  return TruncateLocked(*node, new_size);
}

Status XfsLite::FsyncInodeLocked(MemInode& inode, bool data_only) {
  // Ordered mode: data reaches the device before the metadata commit.
  MUX_RETURN_IF_ERROR(cache_->FlushInode(inode.ino));
  MUX_RETURN_IF_ERROR(device_->Flush());
  if (inode.meta_dirty && !data_only) {
    MUX_RETURN_IF_ERROR(CommitInodesLocked({inode.ino}));
  } else if (inode.meta_dirty) {
    // fdatasync still must publish size/extent changes needed to read the
    // data back; sizes are metadata, so commit those too.
    MUX_RETURN_IF_ERROR(CommitInodesLocked({inode.ino}));
  }
  return Status::Ok();
}

Status XfsLite::Fsync(vfs::FileHandle handle, bool data_only) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  return FsyncInodeLocked(*node, data_only);
}

Status XfsLite::Fallocate(vfs::FileHandle handle, uint64_t offset,
                          uint64_t length, bool keep_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return InvalidArgumentError("zero-length fallocate");
  }
  const uint64_t first = offset / kBlockSize;
  const uint64_t last = (offset + length - 1) / kBlockSize;
  std::vector<uint8_t> zeros(kBlockSize, 0);
  for (uint64_t page = first; page <= last; ++page) {
    if (LookupBlockLocked(*node, page) != 0) {
      continue;
    }
    MUX_ASSIGN_OR_RETURN(uint64_t disk, AllocBlockLocked(*node, page));
    // Zero on-disk content: preallocated blocks must read as zeros even if
    // they held old data.
    MUX_RETURN_IF_ERROR(device_->WriteBlocks(disk, 1, zeros.data()));
    MUX_RETURN_IF_ERROR(InsertMappingLocked(*node, page, disk));
  }
  if (!keep_size) {
    node->size = std::max(node->size, offset + length);
  }
  node->meta_dirty = true;
  return CommitInodesLocked({node->ino});
}

Status XfsLite::PunchHole(vfs::FileHandle handle, uint64_t offset,
                          uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (offset % kBlockSize != 0 || length % kBlockSize != 0 || length == 0) {
    return InvalidArgumentError("hole punch must be block aligned");
  }
  const uint64_t first = offset / kBlockSize;
  const uint64_t count = length / kBlockSize;
  // Dirty cached pages in the hole must not resurface at writeback.
  cache_->InvalidateRange(node->ino, first, count);
  MUX_RETURN_IF_ERROR(FreeExtentsInRangeLocked(*node, first, count));
  node->mtime = clock_->Now();
  // Freed blocks must be journaled before reuse (same rule as truncate).
  return CommitInodesLocked({node->ino});
}

Result<vfs::FileStat> XfsLite::FStat(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  uint64_t blocks = 0;
  for (const Extent& e : node->extents) {
    blocks += e.length;
  }
  st.allocated_bytes = blocks * kBlockSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Status XfsLite::SetAttr(vfs::FileHandle handle, const vfs::AttrUpdate& update) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  if (update.atime) {
    node->atime = *update.atime;
  }
  if (update.mtime) {
    node->mtime = *update.mtime;
  }
  if (update.mode) {
    node->mode = *update.mode;
  }
  if (!update.empty()) {
    node->meta_dirty = true;
  }
  return Status::Ok();
}

Result<vfs::FsStats> XfsLite::StatFs() {
  std::lock_guard<std::mutex> lock(mu_);
  vfs::FsStats st;
  st.capacity_bytes = (total_blocks_ - data_first_) * kBlockSize;
  uint64_t free_blocks = 0;
  for (const auto& ag : ags_) {
    free_blocks += ag.FreeUnits();
  }
  st.free_bytes = free_blocks * kBlockSize;
  st.total_inodes = max_inodes_;
  uint64_t used_inodes = 0;
  for (const MemInode& inode : inodes_) {
    used_inodes += inode.valid ? 1 : 0;
  }
  st.free_inodes = max_inodes_ - used_inodes;
  return st;
}

Status XfsLite::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  MUX_RETURN_IF_ERROR(cache_->FlushAll());
  MUX_RETURN_IF_ERROR(device_->Flush());
  std::vector<vfs::InodeNum> dirty;
  for (const MemInode& inode : inodes_) {
    if (inode.valid && inode.meta_dirty) {
      dirty.push_back(inode.ino);
    }
  }
  // Chunk commits to respect journal capacity.
  const uint64_t chunk = journal_->MaxTxBlocks() / 2;
  for (size_t i = 0; i < dirty.size(); i += chunk) {
    std::vector<vfs::InodeNum> batch(
        dirty.begin() + i,
        dirty.begin() + std::min(dirty.size(), i + chunk));
    MUX_RETURN_IF_ERROR(CommitInodesLocked(std::move(batch)));
  }
  if (!pending_revokes_.empty()) {
    MUX_RETURN_IF_ERROR(CommitInodesLocked({}));
  }
  // Clean sync: push journaled metadata home so the on-device image is
  // self-contained even without a replay.
  return journal_->Checkpoint();
}

uint64_t XfsLite::ExtentCountOf(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto node = ResolveLocked(path);
  if (!node.ok()) {
    return 0;
  }
  return (*node)->extents.size();
}

}  // namespace mux::fs
