// On-device layout of xfslite (XFS-like extent-based journaling FS).
//
// Block map (4 KiB blocks):
//   block 0                      superblock
//   blocks 1 .. 1+J              journal (JBD-style, fscommon/journal)
//   blocks 1+J .. 1+J+I          inode table (16 slots of 256 B per block)
//   remainder                    data, divided into allocation groups
//
// Inodes hold up to kInlineExtents extents inline; larger files spill into
// a chain of overflow blocks of extents (the flat stand-in for XFS's extent
// B+tree). Directory content lives in data blocks like
// file content (64 B dentry records) and all metadata updates go through the
// journal. Free space is tracked per allocation group with the dual-index
// ExtentAllocator (XFS's bnobt/cntbt equivalent), rebuilt at mount by
// scanning the inode table.
#ifndef MUX_FS_XFSLITE_LAYOUT_H_
#define MUX_FS_XFSLITE_LAYOUT_H_

#include <cstdint>

namespace mux::fs::xfs {

inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint32_t kSuperMagic = 0x58465331;  // "XFS1"

inline constexpr uint64_t kSuperBlock = 0;
inline constexpr uint64_t kJournalFirstBlock = 1;

inline constexpr uint64_t kInodeSlotSize = 256;
inline constexpr uint64_t kInodesPerBlock = kBlockSize / kInodeSlotSize;

// Extent record: file_block(8) disk_block(8) len(4) = 20 bytes.
inline constexpr uint64_t kExtentRecordSize = 20;
inline constexpr uint32_t kInlineExtents = 8;
// Overflow chain block: next(8) count(8) extents...
inline constexpr uint64_t kOverflowHeader = 16;
inline constexpr uint32_t kOverflowPerBlock =
    static_cast<uint32_t>((kBlockSize - kOverflowHeader) / kExtentRecordSize);
// Sanity bound on the chain length (caps per-file extents at ~26k).
inline constexpr uint32_t kMaxOverflowBlocks = 128;
inline constexpr uint32_t kMaxExtents =
    kInlineExtents + kOverflowPerBlock * kMaxOverflowBlocks;

struct SuperOffsets {
  static constexpr uint64_t kMagic = 0;          // u32
  static constexpr uint64_t kTotalBlocks = 8;    // u64
  static constexpr uint64_t kJournalBlocks = 16; // u64
  static constexpr uint64_t kInodeBlocks = 24;   // u64
  static constexpr uint64_t kAgCount = 32;       // u32
  static constexpr uint64_t kCrc = 36;           // u32
};

// Inode slot layout (offsets inside the 256 B slot).
struct InodeOffsets {
  static constexpr uint64_t kValid = 0;         // u8
  static constexpr uint64_t kType = 1;          // u8 (0 file, 1 dir)
  static constexpr uint64_t kExtentCount = 2;   // u16 (capped by kMaxExtents)
  static constexpr uint64_t kMode = 4;          // u32
  static constexpr uint64_t kSize = 8;          // u64
  static constexpr uint64_t kAtime = 16;        // u64
  static constexpr uint64_t kMtime = 24;        // u64
  static constexpr uint64_t kCtime = 32;        // u64
  static constexpr uint64_t kOverflowBlock = 40;  // u64 (0 = none)
  static constexpr uint64_t kAgHint = 48;       // u32
  static constexpr uint64_t kExtents = 56;      // inline extent records
};

// Directory entry record inside directory data blocks (64 B).
struct DentryOffsets {
  static constexpr uint64_t kIno = 0;       // u64 (0 = empty slot)
  static constexpr uint64_t kNameLen = 8;   // u8
  static constexpr uint64_t kName = 9;      // up to 55 bytes
};
inline constexpr uint64_t kDentrySize = 64;
inline constexpr uint64_t kMaxNameLen = kDentrySize - DentryOffsets::kName;

inline constexpr uint64_t kRootIno = 1;

}  // namespace mux::fs::xfs

#endif  // MUX_FS_XFSLITE_LAYOUT_H_
