#include "src/fs/novafs/novafs.h"

#include <algorithm>
#include <cstring>

#include "src/common/checksum.h"
#include "src/common/encoding.h"
#include "src/common/logging.h"

namespace mux::fs {

using nova::AttrEntryOffsets;
using nova::DentryEntryOffsets;
using nova::EntryType;
using nova::InodeOffsets;
using nova::RenameJournalOffsets;
using nova::SuperOffsets;
using nova::WriteEntryOffsets;
using nova::kEntriesPerLogPage;
using nova::kInodeSlotSize;
using nova::kInodesPerPage;
using nova::kLogEntrySize;
using nova::kLogHeaderSize;
using nova::kPageSize;
using nova::kRootIno;

namespace {

// Entry CRC covers the first 40 bytes (everything before the widest crc
// field position used by any type is within this prefix for write entries;
// attr and dentry entries place their crc differently, so each helper
// computes over its own payload).
uint32_t WriteEntryCrc(const uint8_t* entry) {
  return Crc32c(entry, WriteEntryOffsets::kCrc);
}
uint32_t AttrEntryCrc(const uint8_t* entry) {
  return Crc32c(entry, AttrEntryOffsets::kCrc);
}
uint32_t DentryCrc(const uint8_t* entry) {
  // Covers type/name_len + ino + name, skipping the crc field itself.
  uint32_t crc = Crc32c(entry, DentryEntryOffsets::kCrc);
  return Crc32c(entry + DentryEntryOffsets::kIno,
                kLogEntrySize - DentryEntryOffsets::kIno, crc);
}

}  // namespace

NovaFs::NovaFs(device::PmDevice* pm, SimClock* clock)
    : NovaFs(pm, clock, Options()) {}

NovaFs::NovaFs(device::PmDevice* pm, SimClock* clock, Options options)
    : pm_(pm), clock_(clock), options_(options) {
  total_pages_ = pm_->capacity() / kPageSize;
  inode_pages_ = options_.inode_table_pages != 0
                     ? options_.inode_table_pages
                     : std::max<uint64_t>(1, total_pages_ / 256);
  max_inodes_ = inode_pages_ * kInodesPerPage;
  pool_first_page_ = nova::kInodeTableFirstPage + inode_pages_;
  MUX_CHECK(pool_first_page_ < total_pages_)
      << "PM device too small for novafs";
}

uint64_t NovaFs::SlotAddr(vfs::InodeNum ino) const {
  return nova::kInodeTableFirstPage * kPageSize + ino * kInodeSlotSize;
}

Status NovaFs::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  inodes_.clear();
  open_files_.clear();
  data_pages_used_ = 0;
  allocator_ = ExtentAllocator(pool_first_page_,
                               total_pages_ - pool_first_page_);

  // Superblock.
  std::vector<uint8_t> super(kPageSize, 0);
  Put32(super.data() + SuperOffsets::kMagic, nova::kSuperMagic);
  Put64(super.data() + SuperOffsets::kTotalPages, total_pages_);
  Put64(super.data() + SuperOffsets::kInodePages, inode_pages_);
  Put32(super.data() + SuperOffsets::kCrc,
        Crc32c(super.data(), SuperOffsets::kCrc));
  MUX_RETURN_IF_ERROR(pm_->Store(0, kPageSize, super.data()));
  MUX_RETURN_IF_ERROR(pm_->Persist(0, kPageSize));

  // Clear rename journal + inode table.
  std::vector<uint8_t> zero(kPageSize, 0);
  for (uint64_t p = nova::kJournalPage; p < pool_first_page_; ++p) {
    MUX_RETURN_IF_ERROR(pm_->Store(p * kPageSize, kPageSize, zero.data()));
    MUX_RETURN_IF_ERROR(pm_->Persist(p * kPageSize, kPageSize));
  }

  // Root directory.
  MemInode root;
  root.ino = kRootIno;
  root.type = vfs::FileType::kDirectory;
  root.mode = 0755;
  root.ctime = root.mtime = root.atime = clock_->Now();
  MUX_RETURN_IF_ERROR(PersistInodeSlotLocked(root));
  inodes_.emplace(kRootIno, std::move(root));
  return Status::Ok();
}

Status NovaFs::PersistInodeSlotLocked(const MemInode& inode) {
  uint8_t slot[kInodeSlotSize] = {0};
  slot[InodeOffsets::kValid] = 1;
  slot[InodeOffsets::kType] =
      inode.type == vfs::FileType::kDirectory ? 1 : 0;
  Put32(slot + InodeOffsets::kMode, inode.mode);
  Put64(slot + InodeOffsets::kLogHead, inode.log_head);
  Put64(slot + InodeOffsets::kTailPage, inode.tail_page);
  Put32(slot + InodeOffsets::kTailOff, inode.tail_off);
  Put64(slot + InodeOffsets::kCtime, inode.ctime);
  const uint64_t addr = SlotAddr(inode.ino);
  MUX_RETURN_IF_ERROR(pm_->Store(addr, kInodeSlotSize, slot));
  return pm_->Persist(addr, kInodeSlotSize);
}

Status NovaFs::InvalidateInodeSlotLocked(vfs::InodeNum ino) {
  const uint8_t zero = 0;
  const uint64_t addr = SlotAddr(ino) + InodeOffsets::kValid;
  MUX_RETURN_IF_ERROR(pm_->Store(addr, 1, &zero));
  return pm_->Persist(addr, 1);
}

Status NovaFs::AppendEntryLocked(MemInode& inode, const uint8_t* entry) {
  // Ensure the log exists and the tail page has room.
  if (inode.log_head == 0) {
    MUX_ASSIGN_OR_RETURN(uint64_t page, allocator_.AllocContiguous(1));
    uint8_t header[kLogHeaderSize] = {0};
    MUX_RETURN_IF_ERROR(pm_->Store(page * kPageSize, sizeof(header), header));
    MUX_RETURN_IF_ERROR(pm_->Persist(page * kPageSize, sizeof(header)));
    inode.log_head = page;
    inode.tail_page = page;
    inode.tail_off = kLogHeaderSize;
    inode.log_pages.push_back(page);
    MUX_RETURN_IF_ERROR(PersistInodeSlotLocked(inode));
  } else if (inode.tail_off + kLogEntrySize > kPageSize) {
    MUX_ASSIGN_OR_RETURN(uint64_t page, allocator_.AllocContiguous(1));
    uint8_t header[kLogHeaderSize] = {0};
    MUX_RETURN_IF_ERROR(pm_->Store(page * kPageSize, sizeof(header), header));
    MUX_RETURN_IF_ERROR(pm_->Persist(page * kPageSize, sizeof(header)));
    // Link from the full page; the tail still points into the old page so a
    // crash here leaves the new page invisible.
    uint8_t next[8];
    Put64(next, page);
    MUX_RETURN_IF_ERROR(
        pm_->Store(inode.tail_page * kPageSize, sizeof(next), next));
    MUX_RETURN_IF_ERROR(
        pm_->Persist(inode.tail_page * kPageSize, sizeof(next)));
    inode.tail_page = page;
    inode.tail_off = kLogHeaderSize;
    inode.log_pages.push_back(page);
  }

  // Write the entry, then advance the persistent tail (commit point).
  const uint64_t addr = inode.tail_page * kPageSize + inode.tail_off;
  MUX_RETURN_IF_ERROR(pm_->Store(addr, kLogEntrySize, entry));
  MUX_RETURN_IF_ERROR(pm_->Persist(addr, kLogEntrySize));
  inode.tail_off += kLogEntrySize;
  return PersistInodeSlotLocked(inode);
}

Status NovaFs::AppendAttrEntryLocked(MemInode& inode, uint8_t flags) {
  uint8_t entry[kLogEntrySize] = {0};
  entry[AttrEntryOffsets::kType] = static_cast<uint8_t>(EntryType::kAttr);
  entry[AttrEntryOffsets::kFlags] = flags;
  Put32(entry + AttrEntryOffsets::kMode, inode.mode);
  Put64(entry + AttrEntryOffsets::kSize, inode.size);
  Put64(entry + AttrEntryOffsets::kMtime, inode.mtime);
  Put64(entry + AttrEntryOffsets::kAtime, inode.atime);
  Put32(entry + AttrEntryOffsets::kCrc, AttrEntryCrc(entry));
  return AppendEntryLocked(inode, entry);
}

Status NovaFs::AppendDentryLocked(MemInode& dir, EntryType type,
                                  const std::string& name,
                                  vfs::InodeNum child) {
  if (name.size() > nova::kMaxNameLen) {
    return InvalidArgumentError("name too long: " + name);
  }
  uint8_t entry[kLogEntrySize] = {0};
  entry[DentryEntryOffsets::kType] = static_cast<uint8_t>(type);
  entry[DentryEntryOffsets::kNameLen] = static_cast<uint8_t>(name.size());
  Put64(entry + DentryEntryOffsets::kIno, child);
  std::memcpy(entry + DentryEntryOffsets::kName, name.data(), name.size());
  Put32(entry + DentryEntryOffsets::kCrc, DentryCrc(entry));
  return AppendEntryLocked(dir, entry);
}

Status NovaFs::AppendWriteEntryLocked(MemInode& inode, uint64_t file_page,
                                      uint64_t pm_page, uint32_t num_pages,
                                      uint64_t size_after) {
  uint8_t entry[kLogEntrySize] = {0};
  entry[WriteEntryOffsets::kType] = static_cast<uint8_t>(EntryType::kWrite);
  Put32(entry + WriteEntryOffsets::kNumPages, num_pages);
  Put64(entry + WriteEntryOffsets::kFilePage, file_page);
  Put64(entry + WriteEntryOffsets::kPmPage, pm_page);
  Put64(entry + WriteEntryOffsets::kSizeAfter, size_after);
  Put64(entry + WriteEntryOffsets::kMtime, inode.mtime);
  Put32(entry + WriteEntryOffsets::kCrc, WriteEntryCrc(entry));
  return AppendEntryLocked(inode, entry);
}

// ---- Namespace helpers --------------------------------------------------

Result<NovaFs::MemInode*> NovaFs::ResolveLocked(const std::string& path) {
  if (!vfs::IsValidPath(path)) {
    return InvalidArgumentError("invalid path: " + path);
  }
  MemInode* cur = &inodes_.at(kRootIno);
  for (const auto& part : vfs::SplitPath(path)) {
    if (cur->type != vfs::FileType::kDirectory) {
      return NotDirError(path);
    }
    auto it = cur->children.find(part);
    if (it == cur->children.end()) {
      return NotFoundError(path);
    }
    auto node = inodes_.find(it->second);
    if (node == inodes_.end()) {
      return CorruptionError("dentry points to missing inode");
    }
    cur = &node->second;
  }
  return cur;
}

Result<NovaFs::MemInode*> NovaFs::ResolveDirLocked(const std::string& path) {
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  return node;
}

Result<NovaFs::MemInode*> NovaFs::HandleInodeLocked(vfs::FileHandle handle,
                                                    uint32_t needed_flags) {
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return BadHandleError("unknown handle");
  }
  if ((it->second.flags & needed_flags) != needed_flags) {
    return PermissionError("handle lacks required access mode");
  }
  auto node = inodes_.find(it->second.ino);
  if (node == inodes_.end()) {
    return BadHandleError("file was removed");
  }
  return &node->second;
}

Result<NovaFs::MemInode*> NovaFs::CreateInodeLocked(vfs::FileType type,
                                                    uint32_t mode) {
  vfs::InodeNum ino = vfs::kInvalidInode;
  if (!free_inos_.empty()) {
    ino = free_inos_.back();
    free_inos_.pop_back();
  } else {
    for (vfs::InodeNum candidate = kRootIno + 1; candidate < max_inodes_;
         ++candidate) {
      if (!inodes_.contains(candidate)) {
        ino = candidate;
        break;
      }
    }
  }
  if (ino == vfs::kInvalidInode) {
    return NoSpaceError("inode table full");
  }
  MemInode node;
  node.ino = ino;
  node.type = type;
  node.mode = mode;
  node.ctime = node.mtime = node.atime = clock_->Now();
  MUX_RETURN_IF_ERROR(PersistInodeSlotLocked(node));
  auto [it, inserted] = inodes_.emplace(ino, std::move(node));
  (void)inserted;
  return &it->second;
}

Status NovaFs::FreeInodeLocked(MemInode& inode) {
  MUX_RETURN_IF_ERROR(InvalidateInodeSlotLocked(inode.ino));
  for (const auto& [file_page, pm_page] : inode.pages) {
    MUX_RETURN_IF_ERROR(allocator_.Free(pm_page, 1));
    data_pages_used_--;
  }
  for (uint64_t page : inode.log_pages) {
    MUX_RETURN_IF_ERROR(allocator_.Free(page, 1));
  }
  free_inos_.push_back(inode.ino);
  inodes_.erase(inode.ino);
  return Status::Ok();
}

// ---- Public API ----------------------------------------------------------

Result<vfs::FileHandle> NovaFs::Open(const std::string& path, uint32_t flags,
                                     uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  auto resolved = ResolveLocked(path);
  MemInode* node = nullptr;
  if (resolved.ok()) {
    if ((flags & vfs::OpenFlags::kExclusive) &&
        (flags & vfs::OpenFlags::kCreate)) {
      return ExistsError(path);
    }
    node = *resolved;
    if (node->type == vfs::FileType::kDirectory) {
      return IsDirError(path);
    }
    if (flags & vfs::OpenFlags::kTruncate) {
      MUX_RETURN_IF_ERROR(TruncateLocked(*node, 0));
    }
  } else if (resolved.status().code() == ErrorCode::kNotFound &&
             (flags & vfs::OpenFlags::kCreate)) {
    MUX_ASSIGN_OR_RETURN(MemInode * parent,
                         ResolveDirLocked(vfs::Dirname(path)));
    const vfs::InodeNum parent_ino = parent->ino;
    MUX_ASSIGN_OR_RETURN(node,
                         CreateInodeLocked(vfs::FileType::kRegular, mode));
    // Re-fetch: CreateInodeLocked may rehash inodes_.
    MemInode& parent_ref = inodes_.at(parent_ino);
    MUX_RETURN_IF_ERROR(AppendDentryLocked(parent_ref, EntryType::kDentryAdd,
                                           vfs::Basename(path), node->ino));
    parent_ref.children.emplace(vfs::Basename(path), node->ino);
    parent_ref.mtime = clock_->Now();
  } else {
    return resolved.status();
  }
  const vfs::FileHandle handle = next_handle_++;
  open_files_.emplace(handle, OpenFile{node->ino, flags});
  return handle;
}

Status NovaFs::Close(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(handle) == 0) {
    return BadHandleError("close of unknown handle");
  }
  return Status::Ok();
}

Status NovaFs::Mkdir(const std::string& path, uint32_t mode) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (!vfs::IsValidPath(path) || vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("invalid mkdir path: " + path);
  }
  if (ResolveLocked(path).ok()) {
    return ExistsError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  const vfs::InodeNum parent_ino = parent->ino;
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       CreateInodeLocked(vfs::FileType::kDirectory, mode));
  MemInode& parent_ref = inodes_.at(parent_ino);
  MUX_RETURN_IF_ERROR(AppendDentryLocked(parent_ref, EntryType::kDentryAdd,
                                         vfs::Basename(path), node->ino));
  parent_ref.children.emplace(vfs::Basename(path), node->ino);
  parent_ref.mtime = clock_->Now();
  return Status::Ok();
}

Status NovaFs::Rmdir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  if (vfs::NormalizePath(path) == "/") {
    return InvalidArgumentError("cannot remove root");
  }
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type != vfs::FileType::kDirectory) {
    return NotDirError(path);
  }
  if (!node->children.empty()) {
    return NotEmptyError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  MUX_RETURN_IF_ERROR(AppendDentryLocked(*parent, EntryType::kDentryDel,
                                         vfs::Basename(path), node->ino));
  parent->children.erase(vfs::Basename(path));
  parent->mtime = clock_->Now();
  return FreeInodeLocked(*node);
}

Status NovaFs::Unlink(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  if (node->type == vfs::FileType::kDirectory) {
    return IsDirError(path);
  }
  MUX_ASSIGN_OR_RETURN(MemInode * parent, ResolveDirLocked(vfs::Dirname(path)));
  MUX_RETURN_IF_ERROR(AppendDentryLocked(*parent, EntryType::kDentryDel,
                                         vfs::Basename(path), node->ino));
  parent->children.erase(vfs::Basename(path));
  parent->mtime = clock_->Now();
  return FreeInodeLocked(*node);
}

Status NovaFs::Rename(const std::string& from, const std::string& to) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(from));
  if (!vfs::IsValidPath(to)) {
    return InvalidArgumentError("invalid rename target: " + to);
  }
  if (vfs::PathHasPrefix(to, from) &&
      vfs::NormalizePath(to) != vfs::NormalizePath(from)) {
    return InvalidArgumentError("cannot rename a directory into itself");
  }
  const std::string src_name = vfs::Basename(from);
  const std::string dst_name = vfs::Basename(to);
  if (src_name.size() > nova::kMaxNameLen ||
      dst_name.size() > nova::kMaxNameLen || src_name.size() > 63 ||
      dst_name.size() > 63) {
    return InvalidArgumentError("name too long");
  }
  MUX_ASSIGN_OR_RETURN(MemInode * src_dir, ResolveDirLocked(vfs::Dirname(from)));
  MUX_ASSIGN_OR_RETURN(MemInode * dst_dir, ResolveDirLocked(vfs::Dirname(to)));

  // Replaced target (if any) must be removable.
  MemInode* replaced = nullptr;
  auto existing = dst_dir->children.find(dst_name);
  if (existing != dst_dir->children.end()) {
    auto it = inodes_.find(existing->second);
    if (it != inodes_.end()) {
      replaced = &it->second;
      if (replaced->type == vfs::FileType::kDirectory &&
          !replaced->children.empty()) {
        return NotEmptyError(to);
      }
    }
  }

  // Journal the rename so a crash mid-way can be redone.
  uint8_t record[kPageSize] = {0};
  Put64(record + RenameJournalOffsets::kSrcDir, src_dir->ino);
  Put64(record + RenameJournalOffsets::kDstDir, dst_dir->ino);
  Put64(record + RenameJournalOffsets::kIno, node->ino);
  record[RenameJournalOffsets::kSrcLen] =
      static_cast<uint8_t>(src_name.size());
  record[RenameJournalOffsets::kDstLen] =
      static_cast<uint8_t>(dst_name.size());
  std::memcpy(record + RenameJournalOffsets::kSrcName, src_name.data(),
              src_name.size());
  std::memcpy(record + RenameJournalOffsets::kDstName, dst_name.data(),
              dst_name.size());
  const uint64_t journal_addr = nova::kJournalPage * kPageSize;
  MUX_RETURN_IF_ERROR(pm_->Store(journal_addr + 8, kPageSize - 8,
                                 record + 8));
  MUX_RETURN_IF_ERROR(pm_->Persist(journal_addr + 8, kPageSize - 8));
  const uint8_t valid = 1;
  MUX_RETURN_IF_ERROR(pm_->Store(journal_addr, 1, &valid));
  MUX_RETURN_IF_ERROR(pm_->Persist(journal_addr, 1));

  // Apply: replace target, add to destination, remove from source.
  if (replaced != nullptr) {
    MUX_RETURN_IF_ERROR(AppendDentryLocked(*dst_dir, EntryType::kDentryDel,
                                           dst_name, replaced->ino));
    dst_dir->children.erase(dst_name);
    MUX_RETURN_IF_ERROR(FreeInodeLocked(*replaced));
  }
  MUX_RETURN_IF_ERROR(
      AppendDentryLocked(*dst_dir, EntryType::kDentryAdd, dst_name, node->ino));
  dst_dir->children[dst_name] = node->ino;
  dst_dir->mtime = clock_->Now();
  MUX_RETURN_IF_ERROR(
      AppendDentryLocked(*src_dir, EntryType::kDentryDel, src_name, node->ino));
  src_dir->children.erase(src_name);
  src_dir->mtime = clock_->Now();

  // Retire the journal record.
  const uint8_t invalid = 0;
  MUX_RETURN_IF_ERROR(pm_->Store(journal_addr, 1, &invalid));
  return pm_->Persist(journal_addr, 1);
}

Result<vfs::FileStat> NovaFs::Stat(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, ResolveLocked(path));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  st.allocated_bytes = node->pages.size() * kPageSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Result<std::vector<vfs::DirEntry>> NovaFs::ReadDir(const std::string& path) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * dir, ResolveDirLocked(path));
  std::vector<vfs::DirEntry> entries;
  entries.reserve(dir->children.size());
  for (const auto& [name, ino] : dir->children) {
    auto it = inodes_.find(ino);
    if (it == inodes_.end()) {
      continue;
    }
    entries.push_back(vfs::DirEntry{name, it->second.type, ino});
  }
  return entries;
}

Result<uint64_t> NovaFs::Read(vfs::FileHandle handle, uint64_t offset,
                              uint64_t length, uint8_t* out) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kRead));
  if (offset >= node->size) {
    return uint64_t{0};
  }
  const uint64_t n = std::min(length, node->size - offset);
  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kPageSize;
    const uint64_t in_page = pos % kPageSize;
    const uint64_t chunk = std::min(n - done, kPageSize - in_page);
    auto it = node->pages.find(page);
    if (it == node->pages.end()) {
      std::memset(out + done, 0, chunk);  // hole
    } else {
      MUX_RETURN_IF_ERROR(
          pm_->Load(it->second * kPageSize + in_page, chunk, out + done));
    }
    done += chunk;
  }
  node->atime = clock_->Now();  // kept in DRAM; logged lazily (relatime-like)
  return n;
}

Result<uint64_t> NovaFs::Write(vfs::FileHandle handle, uint64_t offset,
                               const uint8_t* data, uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return uint64_t{0};
  }
  const uint64_t first_page = offset / kPageSize;
  const uint64_t last_page = (offset + length - 1) / kPageSize;
  const uint64_t num_pages = last_page - first_page + 1;
  const uint64_t size_after = std::max(node->size, offset + length);

  // COW: stage every affected page into freshly allocated PM pages. Try for
  // one contiguous run (single log entry, single extent).
  auto alloc = allocator_.AllocContiguous(num_pages);
  std::vector<uint64_t> new_pages(num_pages);
  if (alloc.ok()) {
    for (uint64_t i = 0; i < num_pages; ++i) {
      new_pages[i] = *alloc + i;
    }
  } else {
    for (uint64_t i = 0; i < num_pages; ++i) {
      auto one = allocator_.AllocContiguous(1);
      if (!one.ok()) {
        for (uint64_t j = 0; j < i; ++j) {
          (void)allocator_.Free(new_pages[j], 1);
        }
        return one.status();
      }
      new_pages[i] = *one;
    }
  }

  std::vector<uint8_t> staging(kPageSize);
  uint64_t done = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint64_t file_page = first_page + i;
    const uint64_t page_start = file_page * kPageSize;
    const uint64_t copy_from = std::max(offset, page_start);
    const uint64_t copy_to = std::min(offset + length, page_start + kPageSize);
    const bool full_page = copy_from == page_start &&
                           copy_to == page_start + kPageSize;
    auto old_it = node->pages.find(file_page);
    if (!full_page) {
      if (old_it != node->pages.end()) {
        MUX_RETURN_IF_ERROR(pm_->Load(old_it->second * kPageSize, kPageSize,
                                      staging.data()));
      } else {
        std::memset(staging.data(), 0, kPageSize);
      }
    }
    std::memcpy(staging.data() + (copy_from - page_start), data + done,
                copy_to - copy_from);
    done += copy_to - copy_from;
    MUX_RETURN_IF_ERROR(
        pm_->Store(new_pages[i] * kPageSize, kPageSize, staging.data()));
    MUX_RETURN_IF_ERROR(pm_->Persist(new_pages[i] * kPageSize, kPageSize));
  }

  // Commit via log entries: one per contiguous (file_page, pm_page) run.
  node->mtime = clock_->Now();
  uint64_t run_start = 0;
  for (uint64_t i = 1; i <= num_pages; ++i) {
    const bool run_breaks =
        i == num_pages || new_pages[i] != new_pages[i - 1] + 1;
    if (run_breaks) {
      MUX_RETURN_IF_ERROR(AppendWriteEntryLocked(
          *node, first_page + run_start, new_pages[run_start],
          static_cast<uint32_t>(i - run_start), size_after));
      run_start = i;
    }
  }

  // Retire replaced pages and install the new mapping.
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint64_t file_page = first_page + i;
    auto old_it = node->pages.find(file_page);
    if (old_it != node->pages.end()) {
      MUX_RETURN_IF_ERROR(allocator_.Free(old_it->second, 1));
      old_it->second = new_pages[i];
    } else {
      node->pages.emplace(file_page, new_pages[i]);
      data_pages_used_++;
    }
  }
  node->size = size_after;
  return length;
}

Status NovaFs::TruncateLocked(MemInode& inode, uint64_t new_size) {
  if (new_size < inode.size) {
    // Zero the retained tail in place so a later re-extension reads zeros.
    // (NOVA proper would COW the page; the in-place zeroing trades a minor
    // crash-window deviation for simplicity — the bytes being zeroed are
    // semantically deleted either way.)
    if (new_size % kPageSize != 0) {
      auto it = inode.pages.find(new_size / kPageSize);
      if (it != inode.pages.end()) {
        const uint64_t in_page = new_size % kPageSize;
        std::vector<uint8_t> zeros(kPageSize - in_page, 0);
        MUX_RETURN_IF_ERROR(pm_->Store(it->second * kPageSize + in_page,
                                       zeros.size(), zeros.data()));
        MUX_RETURN_IF_ERROR(pm_->Persist(it->second * kPageSize + in_page,
                                         zeros.size()));
      }
    }
    const uint64_t first_dead = (new_size + kPageSize - 1) / kPageSize;
    for (auto it = inode.pages.lower_bound(first_dead);
         it != inode.pages.end();) {
      MUX_RETURN_IF_ERROR(allocator_.Free(it->second, 1));
      data_pages_used_--;
      it = inode.pages.erase(it);
    }
  }
  inode.size = new_size;
  inode.mtime = clock_->Now();
  return AppendAttrEntryLocked(inode, nova::kAttrHasSize |
                                          nova::kAttrHasMtime);
}

Status NovaFs::Truncate(vfs::FileHandle handle, uint64_t new_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  return TruncateLocked(*node, new_size);
}

Status NovaFs::Fsync(vfs::FileHandle handle, bool data_only) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  // Data and metadata are already persistent; only the DRAM-cached atime is
  // flushed opportunistically here.
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  if (!data_only) {
    return AppendAttrEntryLocked(*node,
                                 nova::kAttrHasAtime | nova::kAttrHasMtime);
  }
  return Status::Ok();
}

Status NovaFs::Fallocate(vfs::FileHandle handle, uint64_t offset,
                         uint64_t length, bool keep_size) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (length == 0) {
    return InvalidArgumentError("zero-length fallocate");
  }
  const uint64_t first_page = offset / kPageSize;
  const uint64_t last_page = (offset + length - 1) / kPageSize;

  // Collect missing runs and allocate each contiguously (a fully missing
  // range gets one extent — what Mux's DAX cache file relies on).
  std::vector<uint8_t> zeros(kPageSize, 0);
  uint64_t run_begin = first_page;
  while (run_begin <= last_page) {
    while (run_begin <= last_page && node->pages.contains(run_begin)) {
      ++run_begin;
    }
    if (run_begin > last_page) {
      break;
    }
    uint64_t run_end = run_begin;
    while (run_end + 1 <= last_page && !node->pages.contains(run_end + 1)) {
      ++run_end;
    }
    const uint64_t count = run_end - run_begin + 1;
    MUX_ASSIGN_OR_RETURN(uint64_t pm_start, allocator_.AllocContiguous(count));
    for (uint64_t i = 0; i < count; ++i) {
      MUX_RETURN_IF_ERROR(
          pm_->Store((pm_start + i) * kPageSize, kPageSize, zeros.data()));
      MUX_RETURN_IF_ERROR(pm_->Persist((pm_start + i) * kPageSize, kPageSize));
      node->pages.emplace(run_begin + i, pm_start + i);
      data_pages_used_++;
    }
    const uint64_t size_after =
        keep_size ? node->size
                  : std::max(node->size, (run_end + 1) * kPageSize);
    MUX_RETURN_IF_ERROR(AppendWriteEntryLocked(
        *node, run_begin, pm_start, static_cast<uint32_t>(count), size_after));
    run_begin = run_end + 1;
  }
  if (!keep_size && offset + length > node->size) {
    node->size = offset + length;
    MUX_RETURN_IF_ERROR(AppendAttrEntryLocked(*node, nova::kAttrHasSize));
  }
  return Status::Ok();
}

Status NovaFs::PunchHole(vfs::FileHandle handle, uint64_t offset,
                         uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node,
                       HandleInodeLocked(handle, vfs::OpenFlags::kWrite));
  if (offset % kPageSize != 0 || length % kPageSize != 0 || length == 0) {
    return InvalidArgumentError("hole punch must be page aligned");
  }
  const uint64_t first = offset / kPageSize;
  const uint64_t last = offset / kPageSize + length / kPageSize;
  // Commit the hole in the log first, then reclaim the pages.
  uint8_t entry[kLogEntrySize] = {0};
  entry[WriteEntryOffsets::kType] = static_cast<uint8_t>(EntryType::kHole);
  Put32(entry + WriteEntryOffsets::kNumPages,
        static_cast<uint32_t>(last - first));
  Put64(entry + WriteEntryOffsets::kFilePage, first);
  Put64(entry + WriteEntryOffsets::kSizeAfter, node->size);
  Put64(entry + WriteEntryOffsets::kMtime, clock_->Now());
  Put32(entry + WriteEntryOffsets::kCrc, WriteEntryCrc(entry));
  MUX_RETURN_IF_ERROR(AppendEntryLocked(*node, entry));
  for (auto it = node->pages.lower_bound(first);
       it != node->pages.end() && it->first < last;) {
    MUX_RETURN_IF_ERROR(allocator_.Free(it->second, 1));
    data_pages_used_--;
    it = node->pages.erase(it);
  }
  node->mtime = clock_->Now();
  return Status::Ok();
}

Result<vfs::FileStat> NovaFs::FStat(vfs::FileHandle handle) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  vfs::FileStat st;
  st.ino = node->ino;
  st.type = node->type;
  st.size = node->size;
  st.allocated_bytes = node->pages.size() * kPageSize;
  st.atime = node->atime;
  st.mtime = node->mtime;
  st.ctime = node->ctime;
  st.mode = node->mode;
  return st;
}

Status NovaFs::SetAttr(vfs::FileHandle handle, const vfs::AttrUpdate& update) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  uint8_t flags = 0;
  if (update.atime) {
    node->atime = *update.atime;
    flags |= nova::kAttrHasAtime;
  }
  if (update.mtime) {
    node->mtime = *update.mtime;
    flags |= nova::kAttrHasMtime;
  }
  if (update.mode) {
    node->mode = *update.mode;
    flags |= nova::kAttrHasMode;
  }
  if (flags == 0) {
    return Status::Ok();
  }
  return AppendAttrEntryLocked(*node, flags);
}

Result<vfs::FsStats> NovaFs::StatFs() {
  std::lock_guard<std::mutex> lock(mu_);
  vfs::FsStats st;
  st.capacity_bytes = (total_pages_ - pool_first_page_) * kPageSize;
  st.free_bytes = allocator_.FreeUnits() * kPageSize;
  st.total_inodes = max_inodes_;
  st.free_inodes = max_inodes_ - inodes_.size();
  return st;
}

Status NovaFs::Sync() { return Status::Ok(); }

Result<vfs::DaxMapping> NovaFs::DaxMap(vfs::FileHandle handle, uint64_t offset,
                                       uint64_t length) {
  ChargeOp();
  std::lock_guard<std::mutex> lock(mu_);
  MUX_ASSIGN_OR_RETURN(MemInode * node, HandleInodeLocked(handle, 0));
  if (length == 0) {
    return InvalidArgumentError("zero-length DAX mapping");
  }
  const uint64_t first_page = offset / kPageSize;
  const uint64_t last_page = (offset + length - 1) / kPageSize;
  auto it = node->pages.find(first_page);
  if (it == node->pages.end()) {
    return NotFoundError("DAX range not allocated (fallocate first)");
  }
  const uint64_t pm_first = it->second;
  for (uint64_t page = first_page + 1; page <= last_page; ++page) {
    auto next = node->pages.find(page);
    if (next == node->pages.end() ||
        next->second != pm_first + (page - first_page)) {
      return NotSupportedError("DAX range not physically contiguous");
    }
  }
  vfs::DaxMapping mapping;
  mapping.data = pm_->DaxBase() + pm_first * kPageSize + offset % kPageSize;
  mapping.length = length;
  active_dax_mappings_++;
  return mapping;
}

Status NovaFs::DaxUnmap(const vfs::DaxMapping& mapping) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mapping.data == nullptr || mapping.length == 0) {
    return InvalidArgumentError("not a live DAX mapping");
  }
  if (active_dax_mappings_ == 0) {
    return InvalidArgumentError("DaxUnmap without matching DaxMap");
  }
  active_dax_mappings_--;
  return Status::Ok();
}

uint64_t NovaFs::ActiveDaxMappings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_dax_mappings_;
}

uint64_t NovaFs::FreeDataPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocator_.FreeUnits();
}

// ---- Mount / recovery ----------------------------------------------------

Status NovaFs::Mount() {
  std::lock_guard<std::mutex> lock(mu_);
  inodes_.clear();
  open_files_.clear();
  free_inos_.clear();
  data_pages_used_ = 0;
  active_dax_mappings_ = 0;  // a remount invalidates outstanding mappings
  allocator_ = ExtentAllocator(pool_first_page_,
                               total_pages_ - pool_first_page_);

  std::vector<uint8_t> super(kPageSize);
  MUX_RETURN_IF_ERROR(pm_->Load(0, kPageSize, super.data()));
  if (Get32(super.data() + SuperOffsets::kMagic) != nova::kSuperMagic) {
    return CorruptionError("novafs superblock magic mismatch");
  }
  if (Get32(super.data() + SuperOffsets::kCrc) !=
      Crc32c(super.data(), SuperOffsets::kCrc)) {
    return CorruptionError("novafs superblock checksum mismatch");
  }
  if (Get64(super.data() + SuperOffsets::kTotalPages) != total_pages_ ||
      Get64(super.data() + SuperOffsets::kInodePages) != inode_pages_) {
    return CorruptionError("novafs geometry mismatch");
  }

  // Pass 1: rebuild every valid inode from its log.
  std::vector<uint8_t> slot(kInodeSlotSize);
  for (vfs::InodeNum ino = kRootIno; ino < max_inodes_; ++ino) {
    MUX_RETURN_IF_ERROR(pm_->Load(SlotAddr(ino), kInodeSlotSize, slot.data()));
    if (slot[InodeOffsets::kValid] != 1) {
      continue;
    }
    MUX_RETURN_IF_ERROR(RecoverInodeLocked(ino, slot.data()));
  }
  if (!inodes_.contains(kRootIno)) {
    return CorruptionError("novafs root inode missing");
  }

  // Pass 2: redo an interrupted rename, then reclaim orphans.
  MUX_RETURN_IF_ERROR(ReplayRenameJournalLocked());
  MUX_RETURN_IF_ERROR(OrphanScanLocked());
  return Status::Ok();
}

Status NovaFs::RecoverInodeLocked(vfs::InodeNum ino, const uint8_t* slot) {
  MemInode node;
  node.ino = ino;
  node.type = slot[InodeOffsets::kType] == 1 ? vfs::FileType::kDirectory
                                             : vfs::FileType::kRegular;
  node.mode = Get32(slot + InodeOffsets::kMode);
  node.ctime = Get64(slot + InodeOffsets::kCtime);
  node.atime = node.mtime = node.ctime;
  node.log_head = Get64(slot + InodeOffsets::kLogHead);
  node.tail_page = Get64(slot + InodeOffsets::kTailPage);
  node.tail_off = Get32(slot + InodeOffsets::kTailOff);

  // The log walk only rebuilds the DRAM index; allocator reservations happen
  // afterwards from the *final* mapping. (Reserving inside the walk would
  // race with pages that one inode's history freed and another inode's
  // history reused — replay order across inodes is arbitrary.)
  std::vector<uint8_t> page(kPageSize);
  uint64_t cur_page = node.log_head;
  while (cur_page != 0) {
    node.log_pages.push_back(cur_page);
    MUX_RETURN_IF_ERROR(pm_->Load(cur_page * kPageSize, kPageSize,
                                  page.data()));
    const uint64_t end_off =
        cur_page == node.tail_page ? node.tail_off : kPageSize;
    for (uint64_t off = kLogHeaderSize; off + kLogEntrySize <= end_off;
         off += kLogEntrySize) {
      const uint8_t* entry = page.data() + off;
      const auto type = static_cast<EntryType>(entry[0]);
      switch (type) {
        case EntryType::kWrite: {
          if (Get32(entry + WriteEntryOffsets::kCrc) != WriteEntryCrc(entry)) {
            return CorruptionError("write entry checksum mismatch");
          }
          const uint64_t file_page = Get64(entry + WriteEntryOffsets::kFilePage);
          const uint64_t pm_page = Get64(entry + WriteEntryOffsets::kPmPage);
          const uint32_t count = Get32(entry + WriteEntryOffsets::kNumPages);
          for (uint32_t i = 0; i < count; ++i) {
            node.pages[file_page + i] = pm_page + i;
          }
          node.size = Get64(entry + WriteEntryOffsets::kSizeAfter);
          node.mtime = Get64(entry + WriteEntryOffsets::kMtime);
          break;
        }
        case EntryType::kAttr: {
          if (Get32(entry + AttrEntryOffsets::kCrc) != AttrEntryCrc(entry)) {
            return CorruptionError("attr entry checksum mismatch");
          }
          const uint8_t flags = entry[AttrEntryOffsets::kFlags];
          if (flags & nova::kAttrHasSize) {
            const uint64_t new_size = Get64(entry + AttrEntryOffsets::kSize);
            if (new_size < node.size) {
              const uint64_t first_dead =
                  (new_size + kPageSize - 1) / kPageSize;
              node.pages.erase(node.pages.lower_bound(first_dead),
                               node.pages.end());
            }
            node.size = new_size;
          }
          if (flags & nova::kAttrHasMtime) {
            node.mtime = Get64(entry + AttrEntryOffsets::kMtime);
          }
          if (flags & nova::kAttrHasAtime) {
            node.atime = Get64(entry + AttrEntryOffsets::kAtime);
          }
          if (flags & nova::kAttrHasMode) {
            node.mode = Get32(entry + AttrEntryOffsets::kMode);
          }
          break;
        }
        case EntryType::kHole: {
          if (Get32(entry + WriteEntryOffsets::kCrc) != WriteEntryCrc(entry)) {
            return CorruptionError("hole entry checksum mismatch");
          }
          const uint64_t file_page = Get64(entry + WriteEntryOffsets::kFilePage);
          const uint32_t count = Get32(entry + WriteEntryOffsets::kNumPages);
          node.pages.erase(node.pages.lower_bound(file_page),
                           node.pages.lower_bound(file_page + count));
          node.mtime = Get64(entry + WriteEntryOffsets::kMtime);
          break;
        }
        case EntryType::kDentryAdd:
        case EntryType::kDentryDel: {
          if (Get32(entry + DentryEntryOffsets::kCrc) != DentryCrc(entry)) {
            return CorruptionError("dentry checksum mismatch");
          }
          const uint8_t name_len = entry[DentryEntryOffsets::kNameLen];
          std::string name(
              reinterpret_cast<const char*>(entry + DentryEntryOffsets::kName),
              name_len);
          const vfs::InodeNum child = Get64(entry + DentryEntryOffsets::kIno);
          if (type == EntryType::kDentryAdd) {
            node.children[name] = child;
          } else {
            node.children.erase(name);
          }
          break;
        }
        case EntryType::kInvalid:
          return CorruptionError("invalid log entry before tail");
      }
    }
    if (cur_page == node.tail_page) {
      break;
    }
    cur_page = Get64(page.data());  // header.next
  }
  // Claim the final footprint: log chain + surviving data pages.
  for (uint64_t log_page : node.log_pages) {
    MUX_RETURN_IF_ERROR(allocator_.Reserve(log_page, 1));
  }
  for (const auto& [file_page, pm_page] : node.pages) {
    MUX_RETURN_IF_ERROR(allocator_.Reserve(pm_page, 1));
    data_pages_used_++;
  }
  inodes_.emplace(ino, std::move(node));
  return Status::Ok();
}

Status NovaFs::ReplayRenameJournalLocked() {
  std::vector<uint8_t> record(kPageSize);
  const uint64_t journal_addr = nova::kJournalPage * kPageSize;
  MUX_RETURN_IF_ERROR(pm_->Load(journal_addr, kPageSize, record.data()));
  if (record[RenameJournalOffsets::kValid] != 1) {
    return Status::Ok();
  }
  const vfs::InodeNum src_dir = Get64(record.data() + RenameJournalOffsets::kSrcDir);
  const vfs::InodeNum dst_dir = Get64(record.data() + RenameJournalOffsets::kDstDir);
  const vfs::InodeNum ino = Get64(record.data() + RenameJournalOffsets::kIno);
  std::string src_name(
      reinterpret_cast<const char*>(record.data() +
                                    RenameJournalOffsets::kSrcName),
      record[RenameJournalOffsets::kSrcLen]);
  std::string dst_name(
      reinterpret_cast<const char*>(record.data() +
                                    RenameJournalOffsets::kDstName),
      record[RenameJournalOffsets::kDstLen]);

  auto src_it = inodes_.find(src_dir);
  auto dst_it = inodes_.find(dst_dir);
  if (src_it != inodes_.end() && dst_it != inodes_.end() &&
      inodes_.contains(ino)) {
    MemInode& src = src_it->second;
    MemInode& dst = dst_it->second;
    // Redo idempotently: ensure the destination mapping exists and the
    // source mapping is gone.
    auto dst_existing = dst.children.find(dst_name);
    if (dst_existing == dst.children.end() || dst_existing->second != ino) {
      if (dst_existing != dst.children.end()) {
        MUX_RETURN_IF_ERROR(AppendDentryLocked(dst, EntryType::kDentryDel,
                                               dst_name,
                                               dst_existing->second));
        dst.children.erase(dst_name);
      }
      MUX_RETURN_IF_ERROR(
          AppendDentryLocked(dst, EntryType::kDentryAdd, dst_name, ino));
      dst.children[dst_name] = ino;
    }
    auto src_existing = src.children.find(src_name);
    if (src_existing != src.children.end() && src_existing->second == ino) {
      MUX_RETURN_IF_ERROR(
          AppendDentryLocked(src, EntryType::kDentryDel, src_name, ino));
      src.children.erase(src_name);
    }
  }
  const uint8_t invalid = 0;
  MUX_RETURN_IF_ERROR(pm_->Store(journal_addr, 1, &invalid));
  return pm_->Persist(journal_addr, 1);
}

Status NovaFs::OrphanScanLocked() {
  std::unordered_map<vfs::InodeNum, uint32_t> refs;
  for (const auto& [ino, inode] : inodes_) {
    if (inode.type == vfs::FileType::kDirectory) {
      for (const auto& [name, child] : inode.children) {
        refs[child]++;
      }
    }
  }
  std::vector<vfs::InodeNum> orphans;
  for (const auto& [ino, inode] : inodes_) {
    if (ino != kRootIno && refs[ino] == 0) {
      orphans.push_back(ino);
    }
  }
  for (vfs::InodeNum ino : orphans) {
    MUX_LOG(kInfo) << "novafs: reclaiming orphan inode " << ino;
    MUX_RETURN_IF_ERROR(FreeInodeLocked(inodes_.at(ino)));
  }
  // Rebuild the free-inode list.
  for (vfs::InodeNum ino = kRootIno + 1; ino < max_inodes_; ++ino) {
    if (!inodes_.contains(ino)) {
      free_inos_.push_back(ino);
    }
  }
  std::reverse(free_inos_.begin(), free_inos_.end());  // allocate low first
  return Status::Ok();
}

}  // namespace mux::fs
