// novafs — a NOVA-like log-structured file system for persistent memory.
//
// Design points carried over from NOVA (FAST '16), the properties the paper
// credits for Mux's PM win over Strata (§3.1):
//  * Data goes straight to PM data pages via DAX-style stores followed by
//    persist barriers (CLWB+fence) — no DRAM page cache, no double write.
//  * Every inode has its own log; operations append an entry and then
//    atomically advance the persistent log tail, which is the commit point.
//  * Writes are copy-on-write: new data pages are populated and persisted
//    before the log entry that makes them visible.
//  * Recovery replays per-inode logs up to the recorded tails; allocator
//    state is rebuilt in DRAM (never persisted). An orphan scan reclaims
//    inodes that lost their last directory reference mid-crash.
//  * Cross-directory renames go through a one-record journal page.
//
// fsync is a no-op for data (everything is durable at write return), which
// is exactly the behaviour that makes PM file systems fast.
#ifndef MUX_FS_NOVAFS_NOVAFS_H_
#define MUX_FS_NOVAFS_NOVAFS_H_

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/device/pm_device.h"
#include "src/fs/fscommon/extent_allocator.h"
#include "src/fs/novafs/layout.h"
#include "src/vfs/file_system.h"
#include "src/vfs/path.h"

namespace mux::fs {

class NovaFs : public vfs::FileSystem {
 public:
  struct Options {
    // Pages reserved for inode slots; 0 picks total_pages/256 (>= 1).
    uint64_t inode_table_pages = 0;
    // Modelled CPU cost of one VFS call into this FS (path/index work).
    SimTime op_software_ns = 300;
  };

  NovaFs(device::PmDevice* pm, SimClock* clock, Options options);
  NovaFs(device::PmDevice* pm, SimClock* clock);

  // Initializes an empty file system (destroys existing content).
  Status Format();
  // Recovers state from PM after a restart or crash.
  Status Mount();

  std::string_view Name() const override { return "novafs"; }

  Result<vfs::FileHandle> Open(const std::string& path, uint32_t flags,
                               uint32_t mode = 0644) override;
  Status Close(vfs::FileHandle handle) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<vfs::FileStat> Stat(const std::string& path) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;

  Result<uint64_t> Read(vfs::FileHandle handle, uint64_t offset,
                        uint64_t length, uint8_t* out) override;
  Result<uint64_t> Write(vfs::FileHandle handle, uint64_t offset,
                         const uint8_t* data, uint64_t length) override;
  Status Truncate(vfs::FileHandle handle, uint64_t new_size) override;
  Status Fsync(vfs::FileHandle handle, bool data_only) override;
  Status Fallocate(vfs::FileHandle handle, uint64_t offset, uint64_t length,
                   bool keep_size) override;
  Status PunchHole(vfs::FileHandle handle, uint64_t offset,
                   uint64_t length) override;
  Result<vfs::FileStat> FStat(vfs::FileHandle handle) override;
  Status SetAttr(vfs::FileHandle handle, const vfs::AttrUpdate& update) override;

  Result<vfs::FsStats> StatFs() override;
  Status Sync() override;

  bool SupportsDax() const override { return true; }
  Result<vfs::DaxMapping> DaxMap(vfs::FileHandle handle, uint64_t offset,
                                 uint64_t length) override;
  Status DaxUnmap(const vfs::DaxMapping& mapping) override;
  void ChargeDax(uint64_t bytes, bool is_write) override {
    if (is_write) {
      pm_->ChargeDaxWrite(bytes);
    } else {
      pm_->ChargeDaxRead(bytes);
    }
  }

  // Test/diagnostic accessors.
  uint64_t FreeDataPages() const;
  // Mappings handed out by DaxMap that have not been DaxUnmap'ed yet. A
  // nonzero value at teardown means a DAX consumer leaked its mapping.
  uint64_t ActiveDaxMappings() const;

 private:
  struct MemInode {
    vfs::InodeNum ino = vfs::kInvalidInode;
    vfs::FileType type = vfs::FileType::kRegular;
    uint32_t mode = 0644;
    uint64_t size = 0;
    SimTime atime = 0;
    SimTime mtime = 0;
    SimTime ctime = 0;
    // Regular: file page index -> PM page number.
    std::map<uint64_t, uint64_t> pages;
    // Directory: name -> ino.
    std::map<std::string, vfs::InodeNum> children;
    // Log chain state.
    uint64_t log_head = 0;
    uint64_t tail_page = 0;
    uint32_t tail_off = 0;
    std::vector<uint64_t> log_pages;  // for reclamation
  };

  struct OpenFile {
    vfs::InodeNum ino = vfs::kInvalidInode;
    uint32_t flags = 0;
  };

  // --- PM primitives (mu_ held) ---------------------------------------
  uint64_t SlotAddr(vfs::InodeNum ino) const;
  Status PersistInodeSlotLocked(const MemInode& inode);
  Status InvalidateInodeSlotLocked(vfs::InodeNum ino);
  Status AppendEntryLocked(MemInode& inode, const uint8_t* entry);
  Status AppendAttrEntryLocked(MemInode& inode, uint8_t flags);
  Status AppendDentryLocked(MemInode& dir, nova::EntryType type,
                            const std::string& name, vfs::InodeNum child);
  Status AppendWriteEntryLocked(MemInode& inode, uint64_t file_page,
                                uint64_t pm_page, uint32_t num_pages,
                                uint64_t size_after);

  // --- Namespace helpers (mu_ held) ------------------------------------
  Result<MemInode*> ResolveLocked(const std::string& path);
  Result<MemInode*> ResolveDirLocked(const std::string& path);
  Result<MemInode*> HandleInodeLocked(vfs::FileHandle handle,
                                      uint32_t needed_flags);
  Result<MemInode*> CreateInodeLocked(vfs::FileType type, uint32_t mode);
  Status FreeInodeLocked(MemInode& inode);
  Status TruncateLocked(MemInode& inode, uint64_t new_size);

  // --- Mount-time recovery (mu_ held) -----------------------------------
  Status RecoverInodeLocked(vfs::InodeNum ino, const uint8_t* slot);
  Status ReplayRenameJournalLocked();
  Status OrphanScanLocked();

  void ChargeOp() const { clock_->Advance(options_.op_software_ns); }

  device::PmDevice* const pm_;
  SimClock* const clock_;
  const Options options_;
  uint64_t total_pages_ = 0;
  uint64_t inode_pages_ = 0;
  uint64_t max_inodes_ = 0;
  uint64_t pool_first_page_ = 0;

  mutable std::mutex mu_;
  std::unordered_map<vfs::InodeNum, MemInode> inodes_;
  std::unordered_map<vfs::FileHandle, OpenFile> open_files_;
  ExtentAllocator allocator_;  // PM pool pages (log + data)
  std::vector<vfs::InodeNum> free_inos_;
  vfs::FileHandle next_handle_ = 1;
  uint64_t data_pages_used_ = 0;
  uint64_t active_dax_mappings_ = 0;
};

}  // namespace mux::fs

#endif  // MUX_FS_NOVAFS_NOVAFS_H_
