// On-PM layout of novafs (NOVA-like log-structured PM file system).
//
// PM space (4 KiB pages):
//   page 0                      superblock
//   page 1                      rename journal (one record)
//   pages 2 .. 2+inode_pages    inode table (32 slots of 128 B per page)
//   remaining pages             shared pool for log pages and data pages
//
// Per-inode log: a chain of log pages. Each log page starts with a 64 B
// header {next_page}; the rest holds 64 B entries. The inode slot stores the
// chain head and the persistent tail (page, offset); advancing the tail is
// the commit point of every operation — entries beyond the tail are ignored
// at recovery, which is what makes single-file operations atomic.
#ifndef MUX_FS_NOVAFS_LAYOUT_H_
#define MUX_FS_NOVAFS_LAYOUT_H_

#include <cstdint>

namespace mux::fs::nova {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint32_t kSuperMagic = 0x4e4f5641;  // "NOVA"

inline constexpr uint64_t kSuperPage = 0;
inline constexpr uint64_t kJournalPage = 1;
inline constexpr uint64_t kInodeTableFirstPage = 2;

inline constexpr uint64_t kInodeSlotSize = 128;
inline constexpr uint64_t kInodesPerPage = kPageSize / kInodeSlotSize;

inline constexpr uint64_t kLogEntrySize = 64;
inline constexpr uint64_t kLogHeaderSize = 64;
inline constexpr uint64_t kEntriesPerLogPage =
    (kPageSize - kLogHeaderSize) / kLogEntrySize;

// Superblock fields (offsets within page 0).
struct SuperOffsets {
  static constexpr uint64_t kMagic = 0;        // u32
  static constexpr uint64_t kTotalPages = 8;   // u64
  static constexpr uint64_t kInodePages = 16;  // u64
  static constexpr uint64_t kCrc = 24;         // u32
};

// Inode slot fields (offsets within the 128 B slot).
struct InodeOffsets {
  static constexpr uint64_t kValid = 0;        // u8: 0 free, 1 live
  static constexpr uint64_t kType = 1;         // u8: 0 regular, 1 directory
  static constexpr uint64_t kMode = 4;         // u32
  static constexpr uint64_t kLogHead = 8;      // u64 PM page (0 = none)
  static constexpr uint64_t kTailPage = 16;    // u64 PM page
  static constexpr uint64_t kTailOff = 24;     // u32 byte offset in page
  static constexpr uint64_t kCtime = 32;       // u64
};

// Log entry types.
enum class EntryType : uint8_t {
  kInvalid = 0,
  kWrite = 1,       // data pages committed into the file
  kAttr = 2,        // size / times / mode update
  kDentryAdd = 3,   // directory logs only
  kDentryDel = 4,
  kHole = 5,        // range deallocated (same layout as kWrite, pm_page = 0)
};

// kWrite entry layout (64 B):
//   type(1) pad(3) num_pages(4) file_page(8) pm_page(8) size_after(8)
//   mtime(8) crc(4)
struct WriteEntryOffsets {
  static constexpr uint64_t kType = 0;
  static constexpr uint64_t kNumPages = 4;
  static constexpr uint64_t kFilePage = 8;
  static constexpr uint64_t kPmPage = 16;
  static constexpr uint64_t kSizeAfter = 24;
  static constexpr uint64_t kMtime = 32;
  static constexpr uint64_t kCrc = 40;
};

// kAttr entry layout (64 B):
//   type(1) flags(1) pad(2) mode(4) size(8) mtime(8) atime(8) crc(4)
struct AttrEntryOffsets {
  static constexpr uint64_t kType = 0;
  static constexpr uint64_t kFlags = 1;  // bit0 size, bit1 mtime, bit2 atime, bit3 mode
  static constexpr uint64_t kMode = 4;
  static constexpr uint64_t kSize = 8;
  static constexpr uint64_t kMtime = 16;
  static constexpr uint64_t kAtime = 24;
  static constexpr uint64_t kCrc = 32;
};

inline constexpr uint8_t kAttrHasSize = 1u << 0;
inline constexpr uint8_t kAttrHasMtime = 1u << 1;
inline constexpr uint8_t kAttrHasAtime = 1u << 2;
inline constexpr uint8_t kAttrHasMode = 1u << 3;

// kDentryAdd / kDentryDel layout (64 B):
//   type(1) name_len(1) pad(2) crc(4) ino(8) name(up to 48)
struct DentryEntryOffsets {
  static constexpr uint64_t kType = 0;
  static constexpr uint64_t kNameLen = 1;
  static constexpr uint64_t kCrc = 4;
  static constexpr uint64_t kIno = 8;
  static constexpr uint64_t kName = 16;
};
inline constexpr uint64_t kMaxNameLen = kLogEntrySize - DentryEntryOffsets::kName;

// Rename journal record (page 1):
//   valid(1) pad(7) src_dir(8) dst_dir(8) ino(8) src_len(1) dst_len(1)
//   pad(6) src_name(64) dst_name(64)
struct RenameJournalOffsets {
  static constexpr uint64_t kValid = 0;
  static constexpr uint64_t kSrcDir = 8;
  static constexpr uint64_t kDstDir = 16;
  static constexpr uint64_t kIno = 24;
  static constexpr uint64_t kSrcLen = 32;
  static constexpr uint64_t kDstLen = 33;
  static constexpr uint64_t kSrcName = 40;
  static constexpr uint64_t kDstName = 104;
};

inline constexpr uint64_t kRootIno = 1;

}  // namespace mux::fs::nova

#endif  // MUX_FS_NOVAFS_LAYOUT_H_
